(** Identifiable / learnable protocol subjects.

    A subject names one live endpoint configuration the toolchain can
    both probe (an {!Prognosis_exec.Engine} worker factory over the
    string-level SUL view) and learn in full through its case study.
    This used to live inside the CLI; the fleet scheduler
    ({!Service}) needs it as a library, and the CLI now reuses it. *)

type t = {
  name : string;  (** e.g. ["tcp:no-challenge"] or ["quic:quiche-like"] *)
  kind : Prognosis.Persist.kind;
  inputs : string array;
      (** string input alphabet, in study order — the alphabet
          {!Prognosis_learner.Learn.run_mq} learns over when driving
          the subject through {!factory} workers *)
  factory :
    seed:int64 -> workers:int -> int -> (string, string) Prognosis_sul.Sul.t;
      (** [factory ~seed ~workers i] is worker [i]'s independent SUL
          instance (per-worker RNG streams split from [seed]) *)
  learn :
    seed:int64 ->
    algorithm:Prognosis_learner.Learn.algorithm ->
    exec:Prognosis_exec.Engine.config option ->
    (string, string) Prognosis_automata.Mealy.t * Prognosis.Report.t;
      (** full typed-study learning run, returning the canonical
          string-rendered model plus its report *)
}

val names : string list
(** The accepted {!of_name} spellings (["quic:<profile>"] standing
    for any {!Prognosis_quic.Quic_profile} name). *)

val of_name : string -> (t, string) result

val profile_of_name :
  string -> (Prognosis_quic.Quic_profile.t, string) result

val seeded_factory :
  (int64 -> 'a) -> seed:int64 -> workers:int -> int -> 'a
(** [seeded_factory make ~seed ~workers] splits [seed] into [workers]
    independent streams and builds worker [i] with [make seed_i]. *)
