module Mealy = Prognosis_automata.Mealy
module Rng = Prognosis_sul.Rng
module Learn = Prognosis_learner.Learn
module Cache = Prognosis_learner.Cache
module Eq_oracle = Prognosis_learner.Eq_oracle
module Engine = Prognosis_exec.Engine
module Library = Prognosis_fingerprint.Library
module Splitter = Prognosis_fingerprint.Splitter
module Identify = Prognosis_fingerprint.Identify
module Jsonx = Prognosis_obs.Jsonx
module Trace = Prognosis_obs.Trace
open Prognosis

type op = Learn | Identify

type job = {
  op : op;
  subject : Subject.t;
  seed : int64;
  algorithm : Learn.algorithm;
}

let job ?(seed = 1L) ?(algorithm = Learn.Ttt_tree) op subject =
  { op; subject; seed; algorithm }

let op_name = function Learn -> "learn" | Identify -> "identify"
let algo_name = function Learn.Ttt_tree -> "ttt" | Learn.L_star -> "lstar"

(* --- jobs.json (prognosis.jobs/1) --- *)

let jobs_schema = "prognosis.jobs/1"
let ( let* ) = Result.bind

let job_of_json i j =
  let ctx msg = Error (Printf.sprintf "job %d: %s" i msg) in
  let* op =
    match Option.bind (Jsonx.member "op" j) Jsonx.to_string_opt with
    | Some "learn" -> Ok Learn
    | Some "identify" -> Ok Identify
    | Some other -> ctx (Printf.sprintf "unknown op %S" other)
    | None -> ctx "missing \"op\" (learn or identify)"
  in
  let* subject =
    match Option.bind (Jsonx.member "subject" j) Jsonx.to_string_opt with
    | None -> ctx "missing \"subject\""
    | Some name -> (
        match Subject.of_name name with Ok s -> Ok s | Error e -> ctx e)
  in
  let* seed =
    match Jsonx.member "seed" j with
    | None -> Ok 1L
    | Some (Jsonx.Int n) -> Ok (Int64.of_int n)
    | Some (Jsonx.String s) -> (
        match Int64.of_string_opt s with
        | Some v -> Ok v
        | None -> ctx (Printf.sprintf "bad seed %S" s))
    | Some _ -> ctx "seed must be an integer"
  in
  let* algorithm =
    match Option.bind (Jsonx.member "algorithm" j) Jsonx.to_string_opt with
    | None | Some "ttt" -> Ok Learn.Ttt_tree
    | Some "lstar" -> Ok Learn.L_star
    | Some other -> ctx (Printf.sprintf "unknown algorithm %S" other)
  in
  Ok { op; subject; seed; algorithm }

let jobs_of_json json =
  let* () =
    match Option.bind (Jsonx.member "schema" json) Jsonx.to_string_opt with
    | Some s when s = jobs_schema -> Ok ()
    | Some s -> Error (Printf.sprintf "expected schema %s, got %s" jobs_schema s)
    | None -> Error (Printf.sprintf "missing schema (expected %s)" jobs_schema)
  in
  match Jsonx.member "jobs" json with
  | Some (Jsonx.List items) ->
      let rec go i = function
        | [] -> Ok []
        | j :: rest ->
            let* job = job_of_json i j in
            let* jobs = go (i + 1) rest in
            Ok (job :: jobs)
      in
      go 0 items
  | Some _ -> Error "\"jobs\" must be a list"
  | None -> Error "missing \"jobs\" list"

let jobs_of_string text =
  match Jsonx.of_string_opt text with
  | None -> Error "jobs file is not valid JSON"
  | Some json -> jobs_of_json json

(* --- results --- *)

type outcome =
  | Learned of {
      canonical : string;
      states : int;
      transitions : int;
      rounds : int;
    }
  | Identified of Identify.result

type session = {
  index : int;
  s_op : op;
  endpoint : string;
  s_seed : int64;
  s_algorithm : Learn.algorithm;
  outcome : outcome;
  membership_queries : int;
  membership_symbols : int;
  test_words : int;
  cache_hits : int;
  cache_misses : int;
  elapsed_s : float;
}

type shared_cache = {
  cache_endpoint : string;
  shard_count : int;
  hits : int;
  misses : int;
  nodes : int;
}

type t = {
  sessions : session list;
  shared : shared_cache list;
  domains : int;
  elapsed_s : float;
  sessions_per_sec : float;
}

let total_membership_queries t =
  List.fold_left (fun acc s -> acc + s.membership_queries) 0 t.sessions

let shared_hits t = List.fold_left (fun acc c -> acc + c.hits) 0 t.shared

(* --- sessions --- *)

(* The service learns every subject at the string level (the canonical
   alphabet of the persisted models), so learn sessions can share the
   same sharded membership cache identify sessions use. The
   equivalence oracle mirrors the case studies' staple: W-method with
   one extra state plus a seeded random-word sweep. *)
let eq_oracle ~seed =
  let rng = Rng.create (Int64.add seed 7L) in
  Eq_oracle.combine
    [
      Eq_oracle.w_method ~extra_states:1 ();
      Eq_oracle.random_words ~rng ~max_tests:500 ~min_len:1 ~max_len:12;
    ]

let run_learn ~shared ~config ~labels (job : job) =
  let workers = config.Engine.workers in
  let engine =
    Engine.create ~config ~labels
      ~factory:(job.subject.Subject.factory ~seed:job.seed ~workers)
      ()
  in
  let mq = Cache.Sharded.wrap shared (Engine.membership engine) in
  let r =
    Learn.run_mq ~algorithm:job.algorithm
      ~cache_stats:(fun () -> Engine.cache_stats engine)
      ~inputs:job.subject.Subject.inputs ~mq ~eq:(eq_oracle ~seed:job.seed) ()
  in
  let canonical =
    Persist.text_of_model ~kind:job.subject.Subject.kind
      ~input_to_string:Fun.id ~output_to_string:Fun.id r.Learn.model
  in
  ( Learned
      {
        canonical;
        states = Mealy.size r.Learn.model;
        transitions = Mealy.transitions r.Learn.model;
        rounds = r.Learn.rounds;
      },
    engine )

let run_identify ~shared ~tree ~config ~labels (job : job) =
  let workers = config.Engine.workers in
  let engine =
    Engine.create ~config ~labels
      ~factory:(job.subject.Subject.factory ~seed:job.seed ~workers)
      ()
  in
  let mq = Cache.Sharded.wrap shared (Engine.membership engine) in
  (Identified (Identify.run ~mq tree), engine)

(* --- the scheduler --- *)

exception Service_error of string

let default_config = { Engine.default with Engine.batch = true }

let run ?(domains = 1) ?(shards = 8) ?(config = default_config) ?library ~jobs
    () =
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  (* Resident splitter forest: built (and its entry models packed)
     once on this domain before fan-out — [Mealy.Packed.pack]
     memoizes on the model record and is not safe to race. *)
  let forest =
    if Array.exists (fun j -> j.op = Identify) jobs then
      match library with
      | None -> Error "identify jobs require a model library"
      | Some lib -> (
          List.iter
            (fun (e : Library.entry) ->
              ignore (Mealy.Packed.pack e.Library.model))
            lib.Library.entries;
          match Splitter.of_library lib with
          | Ok forest -> Ok forest
          | Error e -> Error e)
    else Ok []
  in
  match forest with
  | Error e -> Error e
  | Ok forest ->
      (* One shared sharded cache per endpoint configuration: sessions
         probing behaviourally identical endpoints (same subject name —
         SUL answers are seed-invariant) pool their answers; distinct
         configurations must not, they answer differently. *)
      let caches = Hashtbl.create 8 in
      Array.iter
        (fun j ->
          let name = j.subject.Subject.name in
          if not (Hashtbl.mem caches name) then
            Hashtbl.add caches name (Cache.Sharded.create ~shards ()))
        jobs;
      let tree_for (j : job) =
        Option.value ~default:(Splitter.Leaf None)
          (List.assoc_opt j.subject.Subject.kind forest)
      in
      let results = Array.make n None in
      let failures = Array.make n None in
      let next = Atomic.make 0 in
      let run_session i (job : job) =
        let shared = Hashtbl.find caches job.subject.Subject.name in
        let labels = [ ("session", string_of_int i) ] in
        let t0 = Unix.gettimeofday () in
        let outcome, engine =
          match job.op with
          | Learn -> run_learn ~shared ~config ~labels job
          | Identify ->
              run_identify ~shared ~tree:(tree_for job) ~config ~labels job
        in
        let elapsed_s = Unix.gettimeofday () -. t0 in
        let stats = Engine.oracle_stats engine in
        let hits, misses = Engine.cache_stats engine in
        {
          index = i;
          s_op = job.op;
          endpoint = job.subject.Subject.name;
          s_seed = job.seed;
          s_algorithm = job.algorithm;
          outcome;
          membership_queries =
            stats.Prognosis_learner.Oracle.membership_queries;
          membership_symbols =
            stats.Prognosis_learner.Oracle.membership_symbols;
          test_words = stats.Prognosis_learner.Oracle.test_words;
          cache_hits = hits;
          cache_misses = misses;
          elapsed_s;
        }
      in
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            (match run_session i jobs.(i) with
            | session -> results.(i) <- Some session
            | exception e ->
                failures.(i) <- Some (e, Printexc.get_raw_backtrace ()));
            loop ()
          end
        in
        loop ()
      in
      (* The trace sink is not domain-safe (same reason the engine
         refuses parallel execution while tracing), so a traced run
         degrades to a sequential fleet. *)
      let domains =
        let d = max 1 (min domains (max n 1)) in
        if Trace.enabled () then 1 else d
      in
      let t0 = Unix.gettimeofday () in
      if domains = 1 then worker ()
      else begin
        let spawned =
          Array.init (domains - 1) (fun _ -> Domain.spawn worker)
        in
        worker ();
        Array.iter Domain.join spawned
      end;
      let elapsed_s = Unix.gettimeofday () -. t0 in
      (* Failures surface in job order, so a multi-failure fleet
         reports deterministically whichever job comes first. *)
      Array.iter
        (function
          | Some (e, bt) -> Printexc.raise_with_backtrace e bt
          | None -> ())
        failures;
      let sessions =
        Array.to_list
          (Array.map
             (function
               | Some s -> s
               | None -> raise (Service_error "session produced no result"))
             results)
      in
      let shared =
        (* first-appearance order over distinct endpoints, from the
           job list (Hashtbl order is not deterministic) *)
        let seen = Hashtbl.create 8 in
        Array.to_list jobs
        |> List.filter_map (fun j ->
               let name = j.subject.Subject.name in
               if Hashtbl.mem seen name then None
               else begin
                 Hashtbl.add seen name ();
                 let c = Hashtbl.find caches name in
                 Some
                   {
                     cache_endpoint = name;
                     shard_count = Cache.Sharded.shards c;
                     hits = Cache.Sharded.hits c;
                     misses = Cache.Sharded.misses c;
                     nodes = Cache.Sharded.size c;
                   }
               end)
      in
      Ok
        {
          sessions;
          shared;
          domains;
          elapsed_s;
          sessions_per_sec =
            (if elapsed_s > 0.0 then float_of_int n /. elapsed_s else 0.0);
        }

(* --- report block --- *)

let schema = "prognosis.service/1"

let session_json s =
  let base =
    [
      ("index", Jsonx.Int s.index);
      ("op", Jsonx.String (op_name s.s_op));
      (* deliberately not named "subject": report diffing aligns list
         elements by their "subject" field, and a fleet may run the
         same endpoint several times — index alignment is the stable
         choice here *)
      ("endpoint", Jsonx.String s.endpoint);
      ("seed", Jsonx.String (Int64.to_string s.s_seed));
      ("algorithm", Jsonx.String (algo_name s.s_algorithm));
      ("membership_queries", Jsonx.Int s.membership_queries);
      ("membership_symbols", Jsonx.Int s.membership_symbols);
      ("test_words", Jsonx.Int s.test_words);
      ("cache_hits", Jsonx.Int s.cache_hits);
      ("cache_misses", Jsonx.Int s.cache_misses);
      ("elapsed_s", Jsonx.Float s.elapsed_s);
    ]
  in
  let outcome =
    match s.outcome with
    | Learned l ->
        [
          ("outcome", Jsonx.String "learned");
          ("states", Jsonx.Int l.states);
          ("transitions", Jsonx.Int l.transitions);
          ("rounds", Jsonx.Int l.rounds);
        ]
    | Identified r ->
        let verdict =
          match r.Identify.outcome with
          | Identify.Known e -> [ ("outcome", Jsonx.String "known");
                                  ("identified_as", Jsonx.String e.Library.name) ]
          | Identify.Novel _ -> [ ("outcome", Jsonx.String "novel") ]
        in
        verdict
        @ [
            ("words_asked", Jsonx.Int r.Identify.words_asked);
            ("symbols_asked", Jsonx.Int r.Identify.symbols_asked);
            ("walk_words", Jsonx.Int r.Identify.walk_words);
            ("confirm_words", Jsonx.Int r.Identify.confirm_words);
          ]
  in
  Jsonx.Obj (base @ outcome)

let shared_json c =
  Jsonx.Obj
    [
      ("endpoint", Jsonx.String c.cache_endpoint);
      ("shards", Jsonx.Int c.shard_count);
      ("hits", Jsonx.Int c.hits);
      ("misses", Jsonx.Int c.misses);
      ("nodes", Jsonx.Int c.nodes);
    ]

let to_json t =
  Jsonx.Obj
    [
      ("schema", Jsonx.String schema);
      ("domains", Jsonx.Int t.domains);
      ("jobs", Jsonx.Int (List.length t.sessions));
      ("elapsed_s", Jsonx.Float t.elapsed_s);
      ("sessions_per_sec", Jsonx.Float t.sessions_per_sec);
      ("total_membership_queries", Jsonx.Int (total_membership_queries t));
      ("shared_cache_hits", Jsonx.Int (shared_hits t));
      ("sessions", Jsonx.List (List.map session_json t.sessions));
      ("shared_caches", Jsonx.List (List.map shared_json t.shared));
    ]

let pp_session fmt s =
  let outcome =
    match s.outcome with
    | Learned l -> Printf.sprintf "learned %d states" l.states
    | Identified r -> (
        match r.Identify.outcome with
        | Identify.Known e -> "known: " ^ e.Library.name
        | Identify.Novel _ -> "novel")
  in
  Format.fprintf fmt "#%d %s %s (seed %Ld): %s, %d queries, %.3fs" s.index
    (op_name s.s_op) s.endpoint s.s_seed outcome s.membership_queries
    s.elapsed_s

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter (fun s -> Format.fprintf fmt "%a@," pp_session s) t.sessions;
  Format.fprintf fmt
    "%d session(s) on %d domain(s) in %.3fs (%.2f sessions/s), %d shared \
     cache hit(s)@]"
    (List.length t.sessions) t.domains t.elapsed_s t.sessions_per_sec
    (shared_hits t)
