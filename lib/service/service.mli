(** Fleet scheduler: domain-parallel learning and identification
    sessions over shared, sharded membership caches.

    A fleet is a list of jobs — learn or identify, any mix of
    subjects — executed on an OCaml 5 domain pool. Each session owns
    its own {!Prognosis_exec.Engine} (its own SUL workers, its own
    internal cache), but every session probing the same endpoint
    configuration shares one {!Prognosis_learner.Cache.Sharded}
    membership cache, and identify sessions share one resident
    {!Prognosis_fingerprint.Splitter} tree per model kind, compiled
    (and its entry models packed) once before fan-out. Answers served
    from the shared cache never touch a SUL, so a fleet identifying a
    population of similar endpoints spends a fraction of the queries
    of the same sessions run cold.

    Determinism: a session's {e results} (learned canonical model,
    identification verdict) depend only on its job — shared-cache
    answers are behaviourally identical to the session's own SUL's —
    so they are byte-identical to a solo run of the same job
    regardless of [domains]. Per-session {e query counters} at
    [domains > 1] depend on which session warmed the cache first;
    counter-gated comparisons must run with [domains = 1], where job
    order makes them deterministic. *)

type op = Learn | Identify

type job = {
  op : op;
  subject : Subject.t;
  seed : int64;
  algorithm : Prognosis_learner.Learn.algorithm;
}

val job :
  ?seed:int64 ->
  ?algorithm:Prognosis_learner.Learn.algorithm ->
  op ->
  Subject.t ->
  job
(** [seed] defaults to [1L], [algorithm] to TTT. *)

val op_name : op -> string
val algo_name : Prognosis_learner.Learn.algorithm -> string

val jobs_schema : string
(** ["prognosis.jobs/1"]: [{"schema": "prognosis.jobs/1", "jobs":
    [{"op": "learn", "subject": "tcp", "seed": 7, "algorithm":
    "ttt"}, {"op": "identify", "subject": "quic:quiche-like"}]}] —
    [seed] (int or int64 string) and [algorithm] are optional. *)

val jobs_of_json : Prognosis_obs.Jsonx.t -> (job list, string) result
val jobs_of_string : string -> (job list, string) result

type outcome =
  | Learned of {
      canonical : string;
          (** the canonical [prognosis.model/1] serialization — the
              byte-identity currency of the determinism tests *)
      states : int;
      transitions : int;
      rounds : int;
    }
  | Identified of Prognosis_fingerprint.Identify.result

type session = {
  index : int;  (** position in the job list *)
  s_op : op;
  endpoint : string;  (** the subject name *)
  s_seed : int64;
  s_algorithm : Prognosis_learner.Learn.algorithm;
  outcome : outcome;
  membership_queries : int;
      (** words that reached this session's engine, i.e. missed the
          shared cache *)
  membership_symbols : int;
  test_words : int;
  cache_hits : int;  (** this session's engine-internal cache *)
  cache_misses : int;
  elapsed_s : float;
}

type shared_cache = {
  cache_endpoint : string;
  shard_count : int;
  hits : int;
  misses : int;
  nodes : int;
}

type t = {
  sessions : session list;  (** merged in job order, always *)
  shared : shared_cache list;
      (** one per distinct endpoint, in first-appearance order *)
  domains : int;  (** domains actually used *)
  elapsed_s : float;
  sessions_per_sec : float;
      (** wall-clock throughput — scheduling- and hardware-dependent,
          reported in the {e advisory} regression gate only *)
}

val total_membership_queries : t -> int
val shared_hits : t -> int

exception Service_error of string

val default_config : Prognosis_exec.Engine.config
(** {!Prognosis_exec.Engine.default} with batching on. *)

val run :
  ?domains:int ->
  ?shards:int ->
  ?config:Prognosis_exec.Engine.config ->
  ?library:Prognosis_fingerprint.Library.t ->
  jobs:job list ->
  unit ->
  (t, string) result
(** Run the fleet. [domains] (default 1) is clamped to the job count
    and forced to 1 while a trace sink is set (the sink is not
    domain-safe); [shards] (default 8) sizes each shared cache;
    [config] (default {!default_config}) applies to every session's
    engine. [library] is required when any job identifies ([Error]
    otherwise; also on a library whose splitter tree fails to
    compile). A session raising (nondeterministic SUL, conflicting
    cache insert) re-raises here after every domain has joined —
    the first failure in job order wins. *)

val schema : string
(** ["prognosis.service/1"] *)

val to_json : t -> Prognosis_obs.Jsonx.t
(** The [service] block of a report: per-session counters (list keyed
    by index — sessions deliberately carry an ["endpoint"] field, not
    ["subject"], so {!Prognosis_obs.Report_diff} aligns repeated
    endpoints by position) plus aggregate throughput and shared-cache
    totals. *)

val pp : Format.formatter -> t -> unit
