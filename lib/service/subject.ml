module Mealy = Prognosis_automata.Mealy
module Sul = Prognosis_sul.Sul
module Learn = Prognosis_learner.Learn
open Prognosis

type t = {
  name : string;
  kind : Persist.kind;
  inputs : string array;
  factory : seed:int64 -> workers:int -> int -> (string, string) Sul.t;
  learn :
    seed:int64 ->
    algorithm:Learn.algorithm ->
    exec:Prognosis_exec.Engine.config option ->
    (string, string) Mealy.t * Report.t;
}

let profile_of_name name =
  match Prognosis_quic.Quic_profile.find name with
  | Some p -> Ok p
  | None ->
      Error
        (Printf.sprintf "unknown profile %S (available: %s)" name
           (String.concat ", "
              (List.map
                 (fun p -> p.Prognosis_quic.Quic_profile.name)
                 Prognosis_quic.Quic_profile.all)))

let seeded_factory make ~seed ~workers =
  let master = Prognosis_sul.Rng.create seed in
  let wseeds =
    Array.map Prognosis_sul.Rng.next64 (Prognosis_sul.Rng.split_n master workers)
  in
  fun i -> make wseeds.(i)

let tcp name server_config =
  let module A = Prognosis_tcp.Tcp_alphabet in
  let wrap =
    Sul.strings ~symbols:A.all ~to_string:A.to_string
      ~output_to_string:A.output_to_string
  in
  {
    name;
    kind = Persist.Tcp_model;
    inputs = Array.map A.to_string A.all;
    factory =
      (fun ~seed ~workers ->
        seeded_factory
          (fun wseed ->
            wrap (Prognosis_tcp.Tcp_adapter.sul ~server_config ~seed:wseed ()))
          ~seed ~workers);
    learn =
      (fun ~seed ~algorithm ~exec ->
        let r = Tcp_study.learn ~seed ~algorithm ~server_config ?exec () in
        ( Persist.to_string_model ~input_to_string:A.to_string
            ~output_to_string:A.output_to_string r.Tcp_study.model,
          r.Tcp_study.report ));
  }

let dtls name server_config =
  let module A = Prognosis_dtls.Dtls_alphabet in
  let wrap =
    Sul.strings ~symbols:A.all ~to_string:A.to_string
      ~output_to_string:A.output_to_string
  in
  {
    name;
    kind = Persist.Dtls_model;
    inputs = Array.map A.to_string A.all;
    factory =
      (fun ~seed ~workers ->
        seeded_factory
          (fun wseed ->
            wrap (Prognosis_dtls.Dtls_adapter.sul ~server_config ~seed:wseed ()))
          ~seed ~workers);
    learn =
      (fun ~seed ~algorithm ~exec ->
        let r = Dtls_study.learn ~seed ~algorithm ~server_config ?exec () in
        ( Persist.to_string_model ~input_to_string:A.to_string
            ~output_to_string:A.output_to_string r.Dtls_study.model,
          r.Dtls_study.report ));
  }

let quic name profile =
  let module A = Prognosis_quic.Quic_alphabet in
  let wrap =
    Sul.strings ~symbols:A.all ~to_string:A.to_string
      ~output_to_string:A.output_to_string
  in
  {
    name;
    kind = Persist.Quic_model;
    inputs = Array.map A.to_string A.all;
    factory =
      (fun ~seed ~workers ->
        seeded_factory
          (fun wseed ->
            wrap (Prognosis_quic.Quic_adapter.sul ~profile ~seed:wseed ()))
          ~seed ~workers);
    learn =
      (fun ~seed ~algorithm ~exec ->
        let r = Quic_study.learn ~seed ~algorithm ?exec ~profile () in
        ( Persist.to_string_model ~input_to_string:A.to_string
            ~output_to_string:A.output_to_string r.Quic_study.model,
          r.Quic_study.report ));
  }

let names =
  [
    "tcp";
    "tcp:persistent";
    "tcp:no-challenge";
    "dtls";
    "dtls:no-cookie";
    "dtls:lax-ccs";
    "quic:<profile>";
  ]

let of_name name =
  let module T = Prognosis_tcp.Tcp_server in
  let module D = Prognosis_dtls.Dtls_server in
  match name with
  | "tcp" -> Ok (tcp name T.default_config)
  | "tcp:persistent" ->
      Ok (tcp name { T.default_config with T.one_shot = false })
  | "tcp:no-challenge" ->
      Ok (tcp name { T.default_config with T.challenge_acks = false })
  | "dtls" -> Ok (dtls name D.default_config)
  | "dtls:no-cookie" ->
      Ok (dtls name { D.default_config with D.require_cookie = false })
  | "dtls:lax-ccs" ->
      Ok (dtls name { D.default_config with D.strict_ccs = false })
  | _ when String.length name > 5 && String.sub name 0 5 = "quic:" ->
      Result.map (quic name)
        (profile_of_name (String.sub name 5 (String.length name - 5)))
  | _ ->
      Error
        (Printf.sprintf "unknown subject %S (available: %s)" name
           (String.concat ", " names))
