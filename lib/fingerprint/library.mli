(** The model library: a directory of canonical [prognosis.model/1]
    files plus a versioned [prognosis.library/1] manifest.

    The library is the knowledge base of the open-world fingerprinting
    service ("Incremental Fingerprinting in an Open World", PAPERS.md):
    every model ever learned of a known implementation, stored in the
    canonical text format so equivalent behaviours collapse onto
    byte-identical entries. {!Splitter} compiles the library into
    adaptive classification trees; {!Identify} walks them against a
    live endpoint.

    On disk a library is

    {v
    DIR/
      library.json      the manifest (schema prognosis.library/1)
      <name>.model      one canonical model per entry
    v}

    All writes go through {!Prognosis_obs.Atomic_file}, so a crash
    mid-extension never leaves a manifest pointing at a truncated
    model. *)

module Persist := Prognosis.Persist

type entry = {
  name : string;  (** unique within the library, e.g. ["quic:quiche-like"] *)
  kind : Persist.kind;
  file : string;  (** model file basename within the library directory *)
  model : (string, string) Prognosis_automata.Mealy.t;
      (** minimized, canonicalized, string-typed — exactly the machine
          the [prognosis.model/1] bytes describe *)
  text : string;  (** the canonical serialization (identity of the entry) *)
}

type t = { dir : string; entries : entry list }

val schema : string
(** ["prognosis.library/1"]. *)

val manifest_file : string
(** ["library.json"]. *)

val entry_of_model :
  name:string ->
  kind:Persist.kind ->
  (string, string) Prognosis_automata.Mealy.t ->
  entry
(** Canonicalize a string-typed model into an entry (no disk I/O;
    [file] is derived from [name] with [':'] mapped to ['-']). *)

val sniff_kind : string -> Persist.kind option
(** Read the [kind] header line of serialized model text. *)

val load : dir:string -> (t, string) result
(** Read the manifest and every model it references. Errors name the
    offending file — and, for corrupt model text, the 1-based line
    ({!Prognosis.Persist.parse_text}). *)

val build : dir:string -> (t * string list, string) result
(** Scan [dir] for [*.model] files, parse each (kind sniffed from the
    header), drop byte-identical duplicates, and write a fresh
    manifest. Returns the library plus human-readable notes about
    skipped duplicates. Fails — pinpointing file and line — on a
    corrupt model file. *)

type add_outcome =
  | Added of t
  | Duplicate of entry
      (** an entry with byte-identical canonical text already exists *)

val add :
  t -> name:string -> kind:Persist.kind ->
  (string, string) Prognosis_automata.Mealy.t ->
  (add_outcome, string) result
(** Persist a new model into the library directory and rewrite the
    manifest (the open-world extension step). The name must be fresh;
    behaviourally equivalent entries are detected by canonical-bytes
    comparison and reported as {!Duplicate} without touching disk. *)

val find : t -> string -> entry option
(** Entry by name. *)

val group_by_kind : t -> (Persist.kind * entry list) list
(** Entries partitioned by model kind, kinds in {!Prognosis.Persist}
    declaration order, entry order preserved. *)

val to_json : t -> Prognosis_obs.Jsonx.t
(** The manifest document. *)
