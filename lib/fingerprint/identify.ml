module Mealy = Prognosis_automata.Mealy
module Oracle = Prognosis_learner.Oracle
module Jsonx = Prognosis_obs.Jsonx
module Trace = Prognosis_obs.Trace
module Metrics = Prognosis_obs.Metrics

type evidence = {
  word : string list;
  actual : string list;
  expected : string list list;
  stage : string;
}

type outcome = Known of Library.entry | Novel of evidence

type result = {
  outcome : outcome;
  words_asked : int;
  symbols_asked : int;
  walk_words : int;
  confirm_words : int;
}

let m_runs = Metrics.counter Metrics.default "identify.runs"
let m_known = Metrics.counter Metrics.default "identify.known"
let m_novel = Metrics.counter Metrics.default "identify.novel"
let m_walk_words = Metrics.counter Metrics.default "identify.walk_words"

let m_confirm_words =
  Metrics.counter Metrics.default "identify.confirm_words"

let confirmation_suite model =
  let cover = Mealy.access_words model in
  let char = Mealy.characterizing_set model in
  let seen = Hashtbl.create 64 in
  let words = ref [] in
  Array.iter
    (fun access ->
      List.iter
        (fun suffix ->
          let w = access @ suffix in
          if w <> [] && not (Hashtbl.mem seen w) then begin
            Hashtbl.add seen w ();
            words := w :: !words
          end)
        char)
    cover;
  List.rev !words

(* Walk the tree: one separating word per level, following the branch
   keyed by the observed output word. *)
let rec walk ~(mq : (string, string) Oracle.membership) tree asked =
  match tree with
  | Splitter.Leaf candidate -> Ok candidate
  | Splitter.Node { word; branches } -> (
      let actual = mq.ask word in
      incr asked;
      Metrics.inc m_walk_words;
      match List.assoc_opt actual branches with
      | Some sub -> walk ~mq sub asked
      | None ->
          Error
            {
              word;
              actual;
              expected = List.map fst branches;
              stage = "walk";
            })

let confirm ~(mq : (string, string) Oracle.membership)
    (entry : Library.entry) counted =
  let suite = confirmation_suite entry.model in
  counted := List.length suite;
  Metrics.inc ~by:!counted m_confirm_words;
  let answers =
    match mq.ask_batch with
    | Some batch -> batch suite
    | None -> List.map mq.ask suite
  in
  let rec check = function
    | [], [] -> Ok ()
    | w :: ws, a :: as_ ->
        let predicted = Mealy.run entry.model w in
        if a = predicted then check (ws, as_)
        else
          Error
            { word = w; actual = a; expected = [ predicted ]; stage = "confirm" }
    | _ -> assert false
  in
  check (suite, answers)

let run ~mq tree =
  Trace.with_span "identify" @@ fun () ->
  Metrics.inc m_runs;
  let stats : Oracle.stats = mq.Oracle.stats in
  let words0 = stats.membership_queries in
  let symbols0 = stats.membership_symbols in
  let walk_asked = ref 0 in
  let confirm_asked = ref 0 in
  let outcome =
    match Trace.with_span "identify.walk" (fun () -> walk ~mq tree walk_asked)
    with
    | Error e -> Novel e
    | Ok None ->
        (* An empty subtree: the library has nothing of this kind, so
           any endpoint is novel by definition, with nothing asked. *)
        Novel { word = []; actual = []; expected = []; stage = "walk" }
    | Ok (Some entry) -> (
        match
          Trace.with_span "identify.confirm"
            ~attrs:[ ("candidate", Jsonx.String entry.name) ]
            (fun () -> confirm ~mq entry confirm_asked)
        with
        | Ok () -> Known entry
        | Error e -> Novel e)
  in
  (match outcome with
  | Known _ -> Metrics.inc m_known
  | Novel _ -> Metrics.inc m_novel);
  {
    outcome;
    words_asked = stats.membership_queries - words0;
    symbols_asked = stats.membership_symbols - symbols0;
    walk_words = !walk_asked;
    confirm_words = !confirm_asked;
  }

let word_json w = Jsonx.List (List.map (fun s -> Jsonx.String s) w)

let evidence_json e =
  Jsonx.Obj
    [
      ("stage", Jsonx.String e.stage);
      ("word", word_json e.word);
      ("actual", word_json e.actual);
      ("expected", Jsonx.List (List.map word_json e.expected));
    ]

let to_json r =
  let outcome_fields =
    match r.outcome with
    | Known entry ->
        [
          ("outcome", Jsonx.String "known");
          ("entry", Jsonx.String entry.name);
          ( "kind",
            Jsonx.String (Prognosis.Persist.kind_to_string entry.kind) );
        ]
    | Novel e ->
        [ ("outcome", Jsonx.String "novel"); ("evidence", evidence_json e) ]
  in
  Jsonx.Obj
    (("schema", Jsonx.String "prognosis.identification/1")
     :: outcome_fields
    @ [
        ("words_asked", Jsonx.Int r.words_asked);
        ("symbols_asked", Jsonx.Int r.symbols_asked);
        ("walk_words", Jsonx.Int r.walk_words);
        ("confirm_words", Jsonx.Int r.confirm_words);
      ])

let pp_word ppf w = Fmt.pf ppf "%a" Fmt.(list ~sep:(any " ") string) w

let pp ppf r =
  (match r.outcome with
  | Known entry -> Fmt.pf ppf "known: %s@," entry.name
  | Novel e ->
      Fmt.pf ppf "novel (diverged during %s)@," e.stage;
      Fmt.pf ppf "  word:   %a@," pp_word e.word;
      Fmt.pf ppf "  output: %a@," pp_word e.actual;
      List.iter (Fmt.pf ppf "  known:  %a@," pp_word) e.expected);
  Fmt.pf ppf "queries: %d words, %d symbols (%d walk + %d confirm)"
    r.words_asked r.symbols_asked r.walk_words r.confirm_words
