(** Adaptive classification trees: the compiled form of a model
    {!Library}.

    Each internal node holds a {e separating word} — a shortest input
    word on which at least two library entries disagree, found by
    product-automaton BFS ({!Prognosis_analysis.Model_diff}) — and one
    branch per observed output word. Walking the tree against a live
    endpoint asks only the words along one root-to-leaf path, so an
    identification costs a handful of queries where full learning
    costs thousands (the open-world fingerprinting idea of
    "Incremental Fingerprinting in an Open World").

    Construction is deterministic: candidate splits come from
    {!Prognosis_analysis.Model_diff.shortest_difference} (FIFO
    product BFS, alphabet-order tie-break) applied to the first two
    entries of each unresolved group, and branches are sorted by
    output word. The same library therefore always compiles to the
    same tree. *)

module Persist := Prognosis.Persist

type tree =
  | Leaf of Library.entry option
      (** [Some e]: the walk has isolated entry [e] (subject to the
          confirmation pass in {!Identify}); [None]: no library entry
          behaves this way. *)
  | Node of { word : string list; branches : (string list * tree) list }
      (** Ask [word]; follow the branch keyed by the observed output
          word. No matching branch means the endpoint is novel.
          Branches are sorted by output word. *)

val build : Library.entry list -> (tree, string) result
(** Compile one same-kind group of entries. All entries must share
    one input alphabet (same symbols, same order) and be pairwise
    inequivalent — the library's canonical-bytes dedupe guarantees
    the latter; both are checked and reported as [Error]. *)

type insert_outcome =
  | Inserted of tree
  | Duplicate of Library.entry
      (** the new model is behaviourally equivalent to an existing
          entry — nothing to insert *)

val insert : tree -> Library.entry -> (insert_outcome, string) result
(** Incremental extension after a {!Identify} [Novel] verdict: walk
    the new model down the tree and either hang it off an existing
    node as a fresh output branch, or split the leaf it collides with
    using a new shortest separating word. Cheaper than {!build} — it
    diffs against at most one entry — and never moves existing
    entries, so committed identifications stay valid. The tree may be
    one level deeper than a from-scratch rebuild. *)

val of_library :
  Library.t -> ((Persist.kind * tree) list, string) result
(** One tree per model kind present in the library, kinds in
    {!Prognosis.Persist} declaration order. *)

type stats = {
  depth : int;  (** longest root-to-leaf path, in internal nodes *)
  internal : int;  (** number of separating words in the tree *)
  leaves : int;  (** populated leaves, i.e. classifiable entries *)
  max_word_len : int;  (** longest separating word, in symbols *)
}

val stats : tree -> stats

val entries : tree -> Library.entry list
(** Populated leaves in branch-sorted depth-first order — the
    deterministic entry enumeration {!rebuild_if_skewed} feeds back
    into {!build}. *)

val rebuild_if_skewed : tree -> (tree * bool, string) result
(** Rebalance a tree degraded by many incremental {!insert}s: when
    the depth exceeds [2 × log₂ leaves], rebuild from scratch over
    {!entries} (returning [(rebuilt, true)]); otherwise return the
    tree unchanged ([(tree, false)]). Either way the [splitter.depth]
    gauge in {!Prognosis_obs.Metrics.default} is set to the resulting
    depth. Errors propagate from {!build} (they indicate a corrupted
    tree — duplicate or alphabet-mismatched leaves). *)

val to_json : tree -> Prognosis_obs.Jsonx.t
val pp : Format.formatter -> tree -> unit
