module Mealy = Prognosis_automata.Mealy
module Persist = Prognosis.Persist
module Jsonx = Prognosis_obs.Jsonx
module Trace = Prognosis_obs.Trace

type entry = {
  name : string;
  kind : Persist.kind;
  file : string;
  model : (string, string) Mealy.t;
  text : string;
}

type t = { dir : string; entries : entry list }

let schema = "prognosis.library/1"
let manifest_file = "library.json"
let manifest_path dir = Filename.concat dir manifest_file

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '-')
    name

let canonical_text ~kind model =
  Persist.text_of_model ~kind ~input_to_string:Fun.id ~output_to_string:Fun.id
    model

let entry_of_model ~name ~kind model =
  let model = Mealy.canonicalize (Mealy.minimize model) in
  {
    name;
    kind;
    file = sanitize name ^ ".model";
    model;
    text = canonical_text ~kind model;
  }

let sniff_kind text =
  match String.split_on_char '\n' text with
  | _magic :: kind_line :: _ -> (
      match String.split_on_char ' ' kind_line with
      | [ "kind"; k ] -> Persist.kind_of_string k
      | _ -> None)
  | _ -> None

let find t name = List.find_opt (fun e -> e.name = name) t.entries

let group_by_kind t =
  List.filter_map
    (fun kind ->
      match List.filter (fun e -> e.kind = kind) t.entries with
      | [] -> None
      | es -> Some (kind, es))
    Persist.all_kinds

let entry_json e =
  Jsonx.Obj
    [
      ("name", Jsonx.String e.name);
      ("kind", Jsonx.String (Persist.kind_to_string e.kind));
      ("file", Jsonx.String e.file);
      ("states", Jsonx.Int (Mealy.size e.model));
      ("transitions", Jsonx.Int (Mealy.transitions e.model));
      ("alphabet", Jsonx.Int (Mealy.alphabet_size e.model));
    ]

let to_json t =
  Jsonx.Obj
    [
      ("schema", Jsonx.String schema);
      ("entries", Jsonx.List (List.map entry_json t.entries));
    ]

let write_manifest t =
  Prognosis_obs.Atomic_file.write ~path:(manifest_path t.dir)
    (Jsonx.to_string (to_json t) ^ "\n")

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Ok
        (Fun.protect
           ~finally:(fun () -> close_in ic)
           (fun () -> really_input_string ic (in_channel_length ic)))

let ( let* ) = Result.bind

(* Parse one model file into an entry. The canonical text is
   re-rendered from the parsed machine rather than trusted from disk,
   so a hand-edited-but-still-parseable file cannot smuggle a
   non-canonical identity into the library. *)
let load_entry ~dir ~name ~file kind =
  let path = Filename.concat dir file in
  let* model =
    Result.map_error Persist.load_error_to_string (Persist.load_text ~path kind)
  in
  Ok { name; kind; file; model; text = canonical_text ~kind model }

let load ~dir =
  Trace.with_span "library.load" @@ fun () ->
  let path = manifest_path dir in
  let* text =
    Result.map_error (fun m -> "no library manifest: " ^ m) (read_file path)
  in
  let* json =
    Option.to_result ~none:(path ^ ": malformed manifest JSON")
      (Jsonx.of_string_opt text)
  in
  let* () =
    match Jsonx.member "schema" json with
    | Some (Jsonx.String s) when s = schema -> Ok ()
    | Some (Jsonx.String s) ->
        Error (Printf.sprintf "%s: schema %S, this build reads %S" path s schema)
    | _ -> Error (path ^ ": missing schema field")
  in
  let* raw_entries =
    match Jsonx.member "entries" json with
    | Some (Jsonx.List l) -> Ok l
    | _ -> Error (path ^ ": missing entries list")
  in
  let* entries =
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        let str k = Option.bind (Jsonx.member k e) Jsonx.to_string_opt in
        match (str "name", str "kind", str "file") with
        | Some name, Some kind_s, Some file -> (
            match Persist.kind_of_string kind_s with
            | None ->
                Error (Printf.sprintf "%s: entry %S: unknown kind %S" path name kind_s)
            | Some kind ->
                let* entry = load_entry ~dir ~name ~file kind in
                Ok (entry :: acc))
        | _ -> Error (path ^ ": entry missing name/kind/file"))
      (Ok []) raw_entries
  in
  Ok { dir; entries = List.rev entries }

let build ~dir =
  Trace.with_span "library.build" @@ fun () ->
  let* files =
    match Sys.readdir dir with
    | files -> Ok (List.sort String.compare (Array.to_list files))
    | exception Sys_error msg -> Error msg
  in
  let models =
    List.filter (fun f -> Filename.check_suffix f ".model") files
  in
  let* entries, notes =
    List.fold_left
      (fun acc file ->
        let* entries, notes = acc in
        let path = Filename.concat dir file in
        let* text = read_file path in
        let* kind =
          Option.to_result
            ~none:(path ^ ": line 2: missing or unknown kind header")
            (sniff_kind text)
        in
        let* entry =
          load_entry ~dir ~name:(Filename.chop_suffix file ".model") ~file kind
        in
        match
          List.find_opt
            (fun e -> e.kind = entry.kind && String.equal e.text entry.text)
            entries
        with
        | Some dup ->
            Ok
              ( entries,
                Printf.sprintf "%s: behaviourally identical to %s, skipped"
                  file dup.name
                :: notes )
        | None -> Ok (entry :: entries, notes))
      (Ok ([], []))
      models
  in
  let t = { dir; entries = List.rev entries } in
  write_manifest t;
  Ok (t, List.rev notes)

type add_outcome = Added of t | Duplicate of entry

let add t ~name ~kind model =
  Trace.with_span "library.add" @@ fun () ->
  let entry = entry_of_model ~name ~kind model in
  match
    List.find_opt
      (fun e -> e.kind = kind && String.equal e.text entry.text)
      t.entries
  with
  | Some dup -> Ok (Duplicate dup)
  | None ->
      if find t name <> None then
        Error (Printf.sprintf "library already has an entry named %S" name)
      else if List.exists (fun e -> e.file = entry.file) t.entries then
        Error
          (Printf.sprintf "library file name %S already taken (rename the entry)"
             entry.file)
      else begin
        Prognosis_obs.Atomic_file.write
          ~path:(Filename.concat t.dir entry.file)
          entry.text;
        let t = { t with entries = t.entries @ [ entry ] } in
        write_manifest t;
        Ok (Added t)
      end
