(** Open-world endpoint identification.

    Walks a {!Splitter} classification tree against a live endpoint
    through a membership oracle (hand it
    {!Prognosis_exec.Engine.membership} to get batching, caching and
    replica voting for free), then {e confirms} the candidate with the
    entry model's state cover crossed with its characterizing set —
    the per-state fingerprint the W-method builds on — so a machine
    that merely agrees along one tree path cannot masquerade as a
    known implementation.

    Both failure directions are open-world verdicts: an output word no
    branch expects, or a confirmation mismatch, yields {!Novel} with
    replayable evidence. The caller then runs full learning and
    extends the library ({!Library.add} + {!Splitter.insert}) — the
    fallback loop of "Incremental Fingerprinting in an Open World". *)

type evidence = {
  word : string list;  (** input word on which the subject diverged *)
  actual : string list;  (** the subject's output word *)
  expected : string list list;
      (** the output word(s) known entries would produce: every branch
          key at a walk divergence, the candidate's single prediction
          at a confirmation divergence *)
  stage : string;  (** ["walk"] or ["confirm"] *)
}

type outcome =
  | Known of Library.entry
  | Novel of evidence
      (** no library entry matches; the evidence word replays the
          divergence *)

type result = {
  outcome : outcome;
  words_asked : int;  (** membership words crossing the oracle *)
  symbols_asked : int;
  walk_words : int;  (** separating words asked along the tree path *)
  confirm_words : int;  (** confirmation-suite words *)
}

val confirmation_suite :
  (string, string) Prognosis_automata.Mealy.t -> string list list
(** State cover × characterizing set, deduplicated, order-stable —
    the words {!run} uses to confirm a candidate leaf. *)

val run :
  mq:(string, string) Prognosis_learner.Oracle.membership ->
  Splitter.tree ->
  result
(** Identify the endpoint behind [mq]. Emits [identify.walk] /
    [identify.confirm] spans and [identify.*] counters on the default
    metrics registry. Uses [mq.ask_batch] for the confirmation suite
    when the oracle provides it. *)

val to_json : result -> Prognosis_obs.Jsonx.t
(** Schema-versioned ["prognosis.identification/1"] object — the
    ["identification"] block of [prognosis.report/1]
    ({!Prognosis.Report.with_identification}). *)

val pp : Format.formatter -> result -> unit
