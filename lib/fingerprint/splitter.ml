module Mealy = Prognosis_automata.Mealy
module Model_diff = Prognosis_analysis.Model_diff
module Jsonx = Prognosis_obs.Jsonx
module Metrics = Prognosis_obs.Metrics

let g_depth = Metrics.gauge Metrics.default "splitter.depth"

type tree =
  | Leaf of Library.entry option
  | Node of { word : string list; branches : (string list * tree) list }

let ( let* ) = Result.bind
let compare_output = List.compare String.compare

let sort_branches branches =
  List.sort (fun (a, _) (b, _) -> compare_output a b) branches

let same_alphabet a b = Mealy.inputs a.Library.model = Mealy.inputs b.Library.model

let check_alphabets = function
  | [] -> Ok ()
  | first :: rest -> (
      match List.find_opt (fun e -> not (same_alphabet first e)) rest with
      | None -> Ok ()
      | Some e ->
          Error
            (Printf.sprintf
               "entries %S and %S have different input alphabets"
               first.Library.name e.Library.name))

(* Partition [entries] by their output word on [word], preserving
   entry order within each group. *)
let partition_on word entries =
  let groups = ref [] in
  List.iter
    (fun (e : Library.entry) ->
      let out = Mealy.run e.model word in
      match List.assoc_opt out !groups with
      | Some cell -> cell := e :: !cell
      | None -> groups := (out, ref [ e ]) :: !groups)
    entries;
  List.map (fun (out, cell) -> (out, List.rev !cell)) !groups

let rec build_group entries =
  match entries with
  | [] -> Ok (Leaf None)
  | [ e ] -> Ok (Leaf (Some e))
  | (a : Library.entry) :: (b : Library.entry) :: _ -> (
      match Model_diff.shortest_difference a.model b.model with
      | None ->
          Error
            (Printf.sprintf
               "entries %S and %S are behaviourally equivalent (library not \
                deduplicated?)"
               a.name b.name)
      | Some w ->
          (* w.word separates a from b, so every part is a strict
             subset of [entries] and the recursion terminates. *)
          let parts = partition_on w.word entries in
          let* branches =
            List.fold_left
              (fun acc (out, part) ->
                let* acc = acc in
                let* sub = build_group part in
                Ok ((out, sub) :: acc))
              (Ok []) parts
          in
          Ok (Node { word = w.word; branches = sort_branches branches }))

let build entries =
  let* () = check_alphabets entries in
  build_group entries

type insert_outcome = Inserted of tree | Duplicate of Library.entry

let rec insert tree (entry : Library.entry) =
  match tree with
  | Leaf None -> Ok (Inserted (Leaf (Some entry)))
  | Leaf (Some e) ->
      if not (same_alphabet e entry) then
        Error
          (Printf.sprintf "entries %S and %S have different input alphabets"
             e.name entry.name)
      else (
        match Model_diff.shortest_difference e.model entry.model with
        | None -> Ok (Duplicate e)
        | Some w ->
            let out_old = Mealy.run e.model w.word in
            let out_new = Mealy.run entry.model w.word in
            Ok
              (Inserted
                 (Node
                    {
                      word = w.word;
                      branches =
                        sort_branches
                          [
                            (out_old, Leaf (Some e));
                            (out_new, Leaf (Some entry));
                          ];
                    })))
  | Node { word; branches } -> (
      let out = Mealy.run entry.model word in
      match List.assoc_opt out branches with
      | None ->
          Ok
            (Inserted
               (Node
                  {
                    word;
                    branches =
                      sort_branches ((out, Leaf (Some entry)) :: branches);
                  }))
      | Some sub -> (
          let* r = insert sub entry in
          match r with
          | Duplicate _ as d -> Ok d
          | Inserted sub' ->
              let branches =
                List.map
                  (fun (o, t) -> if o = out then (o, sub') else (o, t))
                  branches
              in
              Ok (Inserted (Node { word; branches }))))

let of_library lib =
  List.fold_left
    (fun acc (kind, entries) ->
      let* acc = acc in
      let* tree = build entries in
      Ok ((kind, tree) :: acc))
    (Ok [])
    (List.rev (Library.group_by_kind lib))

type stats = { depth : int; internal : int; leaves : int; max_word_len : int }

let stats tree =
  let rec go t =
    match t with
    | Leaf None -> { depth = 0; internal = 0; leaves = 0; max_word_len = 0 }
    | Leaf (Some _) -> { depth = 0; internal = 0; leaves = 1; max_word_len = 0 }
    | Node { word; branches } ->
        List.fold_left
          (fun acc (_, sub) ->
            let s = go sub in
            {
              depth = max acc.depth (1 + s.depth);
              internal = acc.internal + s.internal;
              leaves = acc.leaves + s.leaves;
              max_word_len = max acc.max_word_len s.max_word_len;
            })
          {
            depth = 1;
            internal = 1;
            leaves = 0;
            max_word_len = List.length word;
          }
          branches
  in
  go tree

let set_depth_gauge tree =
  Metrics.set g_depth (float_of_int (stats tree).depth)

let entries tree =
  let rec go t acc =
    match t with
    | Leaf None -> acc
    | Leaf (Some e) -> e :: acc
    | Node { branches; _ } ->
        List.fold_left (fun acc (_, sub) -> go sub acc) acc branches
  in
  List.rev (go tree [])

(* Incremental {!insert} only ever deepens the tree (a colliding
   branch grows a new node under the old leaf), so a long-lived
   service accumulating entries drifts towards a chain. A balanced
   rebuild is worthwhile once the depth exceeds twice the
   information-theoretic floor of log2(leaves); below that the
   incremental tree is close enough that rebuilding buys little. *)
let rebuild_if_skewed tree =
  let s = stats tree in
  let skewed =
    s.leaves >= 2
    && float_of_int s.depth > 2.0 *. (Float.log (float_of_int s.leaves) /. Float.log 2.0)
  in
  if not skewed then begin
    set_depth_gauge tree;
    Ok (tree, false)
  end
  else
    match build (entries tree) with
    | Error _ as e -> e
    | Ok rebuilt ->
        set_depth_gauge rebuilt;
        Ok (rebuilt, true)

let word_json w = Jsonx.List (List.map (fun s -> Jsonx.String s) w)

let rec to_json = function
  | Leaf None -> Jsonx.Obj [ ("leaf", Jsonx.Null) ]
  | Leaf (Some e) -> Jsonx.Obj [ ("leaf", Jsonx.String e.name) ]
  | Node { word; branches } ->
      Jsonx.Obj
        [
          ("word", word_json word);
          ( "branches",
            Jsonx.List
              (List.map
                 (fun (out, sub) ->
                   Jsonx.Obj
                     [ ("outputs", word_json out); ("subtree", to_json sub) ])
                 branches) );
        ]

let pp_word ppf w =
  Fmt.pf ppf "%a" Fmt.(list ~sep:(any " ") string) w

let rec pp ppf = function
  | Leaf None -> Fmt.pf ppf "(no entry)"
  | Leaf (Some e) -> Fmt.pf ppf "%s" e.name
  | Node { word; branches } ->
      Fmt.pf ppf "@[<v>ask: %a" pp_word word;
      List.iter
        (fun (out, sub) ->
          Fmt.pf ppf "@,@[<v 2>-> %a:@,%a@]" pp_word out pp sub)
        branches;
      Fmt.pf ppf "@]"
