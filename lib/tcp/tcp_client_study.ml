module Rng = Prognosis_sul.Rng
module Network = Prognosis_sul.Network
module Adapter = Prognosis_sul.Adapter
open Tcp_wire

type symbol =
  | Cmd_connect
  | Cmd_send
  | Cmd_close
  | In_syn_ack
  | In_ack
  | In_ack_psh
  | In_fin_ack
  | In_rst

let all =
  [| Cmd_connect; Cmd_send; Cmd_close; In_syn_ack; In_ack; In_ack_psh; In_fin_ack; In_rst |]

let to_string = function
  | Cmd_connect -> "CONNECT"
  | Cmd_send -> "SEND"
  | Cmd_close -> "CLOSE"
  | In_syn_ack -> "SYN+ACK(?,?,0)"
  | In_ack -> "ACK(?,?,0)"
  | In_ack_psh -> "ACK+PSH(?,?,1)"
  | In_fin_ack -> "FIN+ACK(?,?,0)"
  | In_rst -> "RST(?,?,0)"

let pp fmt s = Format.pp_print_string fmt (to_string s)

type output = Tcp_alphabet.symbol list

let output_to_string = Tcp_alphabet.output_to_string
let pp_output = Tcp_alphabet.pp_output

(* The reference server endpoint: enough connection state to build
   valid server→client segments on demand. *)
type peer = {
  rng : Rng.t;
  src_port : int;  (** the server's port *)
  dst_port : int;  (** the client's port *)
  mutable iss : int;
  mutable snd_nxt : int;
  mutable rcv_nxt : int;
  mutable got_syn : bool;
  mutable syn_acked : bool;  (** our SYN+ACK's sequence space consumed *)
  mutable fin_sent : bool;
}

let peer_reset p =
  p.iss <- Rng.int p.rng 0x40000000;
  p.snd_nxt <- p.iss;
  p.rcv_nxt <- 0;
  p.got_syn <- false;
  p.syn_acked <- false;
  p.fin_sent <- false

let peer_create ~src_port ~dst_port rng =
  let p =
    {
      rng;
      src_port;
      dst_port;
      iss = 0;
      snd_nxt = 0;
      rcv_nxt = 0;
      got_syn = false;
      syn_acked = false;
      fin_sent = false;
    }
  in
  peer_reset p;
  p

let peer_absorb p (seg : segment) =
  if seg.flags.syn then begin
    p.got_syn <- true;
    p.rcv_nxt <- seq_add seg.seq 1
  end
  else if seg.flags.fin then
    p.rcv_nxt <- seq_add p.rcv_nxt (String.length seg.payload + 1)
  else if String.length seg.payload > 0 then
    p.rcv_nxt <- seq_add p.rcv_nxt (String.length seg.payload)

let peer_build p ?(payload = "") ~seq ~ack flags =
  make ~payload ~src_port:p.src_port ~dst_port:p.dst_port ~seq ~ack flags

let peer_concretize p symbol =
  match symbol with
  | In_syn_ack ->
      let flags = { no_flags with syn = true; ack = true } in
      if p.got_syn && not p.syn_acked then begin
        let seg = peer_build p ~seq:p.iss ~ack:p.rcv_nxt flags in
        p.snd_nxt <- seq_add p.iss 1;
        p.syn_acked <- true;
        seg
      end
      else if p.syn_acked then
        (* Retransmission of the same SYN+ACK. *)
        peer_build p ~seq:p.iss ~ack:p.rcv_nxt flags
      else peer_build p ~seq:p.iss ~ack:0 flags
  | In_ack -> peer_build p ~seq:p.snd_nxt ~ack:p.rcv_nxt { no_flags with ack = true }
  | In_ack_psh ->
      let flags = { no_flags with ack = true; psh = true } in
      if p.syn_acked && not p.fin_sent then begin
        let seg = peer_build p ~payload:"S" ~seq:p.snd_nxt ~ack:p.rcv_nxt flags in
        p.snd_nxt <- seq_add p.snd_nxt 1;
        seg
      end
      else peer_build p ~payload:"S" ~seq:p.snd_nxt ~ack:p.rcv_nxt flags
  | In_fin_ack ->
      let flags = { no_flags with fin = true; ack = true } in
      if p.syn_acked && not p.fin_sent then begin
        let seg = peer_build p ~seq:p.snd_nxt ~ack:p.rcv_nxt flags in
        p.snd_nxt <- seq_add p.snd_nxt 1;
        p.fin_sent <- true;
        seg
      end
      else if p.fin_sent then
        peer_build p ~seq:(seq_add p.snd_nxt (-1)) ~ack:p.rcv_nxt flags
      else peer_build p ~seq:p.snd_nxt ~ack:p.rcv_nxt flags
  | In_rst -> peer_build p ~seq:p.snd_nxt ~ack:0 { no_flags with rst = true }
  | Cmd_connect | Cmd_send | Cmd_close ->
      invalid_arg "peer_concretize: application commands are not packets"

let adapter ?(network = Network.reliable) ~seed () =
  let rng = Rng.create seed in
  let machine_rng = Rng.split rng in
  let peer_rng = Rng.split rng in
  let channel_rng = Rng.split rng in
  let client = Tcp_client_machine.create ~src_port:40000 ~dst_port:443 machine_rng in
  let peer = peer_create ~src_port:443 ~dst_port:40000 peer_rng in
  let channel = Network.create ~config:network ~seed channel_rng in
  let reset () =
    Tcp_client_machine.reset client;
    peer_reset peer
  in
  let client_ip = 0x0A000001 and server_ip = 0x0A000002 in
  let deliver_to_peer emitted =
    (* Client segments cross the channel (inside IPv4) to the peer. *)
    List.concat_map
      (fun seg ->
        Network.transmit channel
          (Prognosis_sul.Inet.wrap_tcp ~src:client_ip ~dst:server_ip (encode seg)))
      emitted
    |> List.filter_map (fun datagram ->
           match Prognosis_sul.Inet.unwrap_tcp datagram with
           | Ok bytes -> (
               match decode bytes with Ok seg -> Some seg | Error _ -> None)
           | Error _ -> None)
  in
  let step symbol =
    match symbol with
    | Cmd_connect | Cmd_send | Cmd_close ->
        let cmd =
          match symbol with
          | Cmd_connect -> Tcp_client_machine.Connect
          | Cmd_send -> Tcp_client_machine.Send
          | _ -> Tcp_client_machine.Close
        in
        let emitted = Tcp_client_machine.command client cmd in
        let received = deliver_to_peer emitted in
        List.iter (peer_absorb peer) received;
        (List.filter_map Tcp_alphabet.abstract received, [], received)
    | In_syn_ack | In_ack | In_ack_psh | In_fin_ack | In_rst ->
        let request = peer_concretize peer symbol in
        let deliveries =
          Network.transmit channel
            (Prognosis_sul.Inet.wrap_tcp ~src:server_ip ~dst:client_ip
               (encode request))
        in
        let emitted =
          List.concat_map
            (fun datagram ->
              match Prognosis_sul.Inet.unwrap_tcp datagram with
              | Ok bytes -> Tcp_client_machine.handle_bytes client bytes
              | Error _ -> [])
            deliveries
          |> List.filter_map (fun bytes ->
                 match decode bytes with Ok seg -> Some seg | Error _ -> None)
        in
        (* These already crossed the wire once (handle_bytes works on
           encoded datagrams); deliver them to the peer. *)
        let received = deliver_to_peer emitted in
        List.iter (peer_absorb peer) received;
        (List.filter_map Tcp_alphabet.abstract received, [ request ], received)
  in
  Adapter.create ~description:"tcp-client" ~reset ~step ()

let sul ?network ~seed () = Adapter.to_sul (adapter ?network ~seed ())
