module Rng = Prognosis_sul.Rng
module Network = Prognosis_sul.Network
module Adapter = Prognosis_sul.Adapter

type concrete = Tcp_wire.segment

let create ?server_config ?(network = Network.reliable) ~seed () =
  let rng = Rng.create seed in
  let server_rng = Rng.split rng in
  let client_rng = Rng.split rng in
  let channel_rng = Rng.split rng in
  let server = Tcp_server.create ?config:server_config server_rng in
  let dst_port = (Tcp_server.config server).Tcp_server.port in
  let client = Tcp_client.create ~dst_port client_rng in
  let channel = Network.create ~config:network ~seed channel_rng in
  let reset () =
    Tcp_server.reset server;
    Tcp_client.reset client
  in
  (* Segments travel inside real IPv4 datagrams (Example 3.1). *)
  let client_ip = 0x0A000001 and server_ip = 0x0A000002 in
  let step symbol =
    let request = Tcp_client.concretize client symbol in
    let deliveries =
      Network.transmit channel
        (Prognosis_sul.Inet.wrap_tcp ~src:client_ip ~dst:server_ip
           (Tcp_wire.encode request))
    in
    let responses =
      List.concat_map
        (fun datagram ->
          match Prognosis_sul.Inet.unwrap_tcp datagram with
          | Ok segment_bytes -> Tcp_server.handle_bytes server segment_bytes
          | Error _ -> [])
        deliveries
    in
    (* Responses also cross the network back to the client. *)
    let received =
      List.concat_map
        (fun tcp_bytes ->
          Network.transmit channel
            (Prognosis_sul.Inet.wrap_tcp ~src:server_ip ~dst:client_ip tcp_bytes))
        responses
      |> List.filter_map (fun datagram ->
             match Prognosis_sul.Inet.unwrap_tcp datagram with
             | Ok bytes -> (
                 match Tcp_wire.decode bytes with
                 | Ok seg -> Some seg
                 | Error _ -> None)
             | Error _ -> None)
    in
    List.iter (Tcp_client.absorb client) received;
    let output = List.filter_map Tcp_alphabet.abstract received in
    (output, [ request ], received)
  in
  Adapter.create ~description:"tcp" ~reset ~step ()

let sul ?server_config ?network ~seed () =
  Adapter.to_sul (create ?server_config ?network ~seed ())
