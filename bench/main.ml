(* The experiment harness: regenerates every quantitative result and
   figure of the paper's evaluation (§6), printing paper-reported
   values next to the values measured on this reproduction, followed
   by Bechamel micro-benchmarks of the main pipelines.

   Experiment ids match DESIGN.md's per-experiment index (E1-E9). *)

module Mealy = Prognosis_automata.Mealy
module Testing = Prognosis_automata.Testing
module Learn = Prognosis_learner.Learn
module Profile = Prognosis_quic.Quic_profile
module Term = Prognosis_synthesis.Term
module Ext_mealy = Prognosis_synthesis.Ext_mealy
module Model_diff = Prognosis_analysis.Model_diff
open Prognosis

(* --- pretty tables --- *)

let print_table header rows =
  let widths =
    List.fold_left
      (fun widths row ->
        List.map2 (fun w cell -> max w (String.length cell)) widths row)
      (List.map String.length header)
      rows
  in
  let line row =
    String.concat " | "
      (List.map2 (fun w cell -> cell ^ String.make (w - String.length cell) ' ') widths row)
  in
  print_endline (line header);
  print_endline
    (String.concat "-+-" (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> print_endline (line row)) rows

let section id title =
  Printf.printf "\n=== %s: %s ===\n\n" id title

(* The seed for the timed end-to-end learning benchmarks and the
   snapshot determinism guard. Pinned here once: the perf gate diffs
   counter blocks against bench/BENCH_baseline.json, so the benchmarked
   runs must draw exactly the stream the baseline was recorded with. *)
let bench_seed = 5L

(* Cached learning results: several experiments reuse them. *)
let tcp_ttt = lazy (Tcp_study.learn ~seed:1L ())
let tcp_lstar = lazy (Tcp_study.learn ~seed:1L ~algorithm:Learn.L_star ())
let quic_tolerant = lazy (Quic_study.learn ~seed:1L ~profile:Profile.google_like ())
let quic_strict = lazy (Quic_study.learn ~seed:2L ~profile:Profile.strict_retry ())
let quic_quiche = lazy (Quic_study.learn ~seed:3L ~profile:Profile.quiche_like ())

(* --- E1: learning the TCP implementation (§6.1) --- *)

let e1 () =
  section "E1" "Learning a TCP implementation (paper §6.1, Fig. 3b, App. A.1)";
  let ttt = (Lazy.force tcp_ttt).Tcp_study.report in
  let lstar = (Lazy.force tcp_lstar).Tcp_study.report in
  print_table
    [ "source"; "algorithm"; "states"; "transitions"; "membership queries" ]
    [
      [ "paper (Ubuntu 20.04 stack)"; "TTT"; "6"; "42"; "4726" ];
      [
        "this repo (simulated stack)";
        "TTT";
        string_of_int ttt.Report.states;
        string_of_int ttt.Report.transitions;
        string_of_int ttt.Report.membership_queries;
      ];
      [
        "this repo (simulated stack)";
        "L*";
        string_of_int lstar.Report.states;
        string_of_int lstar.Report.transitions;
        string_of_int lstar.Report.membership_queries;
      ];
    ];
  print_newline ();
  Printf.printf
    "shape check: model sizes match the paper exactly (6/42); query counts\n\
     differ because the learner, oracle caching and equivalence testing are\n\
     reimplementations, not LearnLib.\n"

(* --- E2: learning QUIC implementations (§6.2.2) --- *)

let e2 () =
  section "E2" "Learning QUIC implementations (paper §6.2.2, App. A.2-3)";
  let a = (Lazy.force quic_tolerant).Quic_study.report in
  let b = (Lazy.force quic_strict).Quic_study.report in
  let c = (Lazy.force quic_quiche).Quic_study.report in
  let row label (r : Report.t) =
    [
      label;
      string_of_int r.Report.states;
      string_of_int r.Report.transitions;
      string_of_int r.Report.membership_queries;
      string_of_int r.Report.equivalence_rounds;
    ]
  in
  print_table
    [ "implementation"; "states"; "transitions"; "membership queries"; "eq rounds" ]
    [
      [ "paper impl #1"; "12"; "84"; "24301"; "-" ];
      [ "paper impl #2"; "8"; "56"; "12301"; "-" ];
      row "this repo: retry-tolerant (google-like)" a;
      row "this repo: retry-strict (strict-retry)" b;
      row "this repo: no-retry (quiche-like)" c;
    ];
  print_newline ();
  Printf.printf
    "shape check: as in the paper, the implementations learn models of\n\
     different sizes (%d vs %d states) and the retry-tolerant one is larger.\n"
    a.Report.states b.Report.states

(* --- E3: trace reduction (§6.2.2) --- *)

let e3 () =
  section "E3" "Trace reduction via model-based test suites (paper §6.2.2)";
  let exhaustive = Mealy.count_words ~alphabet:7 ~max_len:10 in
  let suite m = Testing.w_method ~extra_states:0 m in
  let wp m = Testing.wp_method ~extra_states:0 m in
  let a = (Lazy.force quic_tolerant).Quic_study.model in
  let b = (Lazy.force quic_strict).Quic_study.model in
  print_table
    [ "quantity"; "paper"; "this repo" ]
    [
      [ "traces of length <= 10, alphabet 7"; "329,554,456";
        Printf.sprintf "%d" exhaustive ];
      [ "model-derived tests, impl #1"; "1210";
        Printf.sprintf "%d (W) / %d (Wp)" (List.length (suite a)) (List.length (wp a)) ];
      [ "model-derived tests, impl #2"; "715";
        Printf.sprintf "%d (W) / %d (Wp)" (List.length (suite b)) (List.length (wp b)) ];
    ];
  print_newline ();
  Printf.printf
    "shape check: the exhaustive count reproduces exactly (same alphabet and\n\
     depth); the learned models cut the traces to check by ~10^5-10^6x, as\n\
     in the paper.\n"

(* --- E4: Issue 1, RFC imprecision (§6.2.3) --- *)

let e4 () =
  section "E4" "Issue 1: RFC imprecision on post-Retry packet-number reset (§6.2.3)";
  let a = Lazy.force quic_tolerant and b = Lazy.force quic_strict in
  let summary =
    Model_diff.summarize ~max_witnesses:2 a.Quic_study.model b.Quic_study.model
  in
  print_table
    [ "observation"; "paper"; "this repo" ]
    [
      [ "models have different sizes"; "12 vs 8 states";
        Printf.sprintf "%d vs %d states" summary.Model_diff.states_a
          summary.Model_diff.states_b ];
      [ "behaviours fork at"; "RETRY / PNS reset"; "second INITIAL[CRYPTO]" ];
    ];
  print_newline ();
  (match summary.Model_diff.witnesses with
  | w :: _ ->
      Printf.printf "shortest distinguishing trace:\n  input: %s\n  #1   : %s\n  #2   : %s\n"
        (String.concat " " (List.map Quic_study.Alphabet.to_string w.Model_diff.word))
        (String.concat " "
           (List.map Quic_study.Alphabet.output_to_string w.Model_diff.outputs_a))
        (String.concat " "
           (List.map Quic_study.Alphabet.output_to_string w.Model_diff.outputs_b))
  | [] -> print_endline "unexpectedly equivalent!");
  Printf.printf
    "\nshape check: one implementation continues the handshake after the\n\
     client resets its packet-number space, the other aborts with\n\
     CONNECTION_CLOSE — the ambiguity the paper reported, later resolved by\n\
     the spec as 'a server MAY abort' [PR #3990].\n"

(* --- E5: Issue 2, nondeterministic post-close resets (§6.2.4) --- *)

let e5 () =
  section "E5" "Issue 2: nondeterminism in connection closure (§6.2.4)";
  let rate p = Quic_study.close_reset_rate ~seed:9L ~runs:500 p in
  let quiche = rate Profile.quiche_like in
  let mvfst = rate Profile.mvfst_like in
  print_table
    [ "implementation"; "paper"; "this repo (500 probes)" ]
    [
      [ "compliant"; "consistent (0% or 100%)"; Printf.sprintf "%.1f%%" (100. *. quiche) ];
      [ "mvfst"; "82%"; Printf.sprintf "%.1f%%" (100. *. mvfst) ];
    ];
  print_newline ();
  Printf.printf
    "shape check: the compliant server answers every post-close probe with a\n\
     Stateless Reset; the mvfst profile answers only ~82%% of them — the\n\
     inconsistent, back-off-free behaviour the paper flags as a DoS vector.\n"

(* --- E6: Issue 3, inconsistent port on Retry (§6.2.5) --- *)

let e6 () =
  section "E6" "Issue 3: inconsistent port on RETRY in the reference client (§6.2.5)";
  let healthy = Lazy.force quic_tolerant in
  let buggy =
    Quic_study.learn ~seed:4L ~profile:Profile.google_like
      ~client_config:
        { Prognosis_quic.Quic_client.retry_port_bug = true; pns_reset_on_retry = true }
      ()
  in
  let summary =
    Model_diff.summarize ~max_witnesses:1 healthy.Quic_study.model
      buggy.Quic_study.model
  in
  (* Can the buggy setup ever complete a handshake? Search the model for
     a reachable transition outputting HANDSHAKE_DONE. *)
  let completes model =
    let found = ref false in
    for s = 0 to Mealy.size model - 1 do
      Array.iter
        (fun sym ->
          let _, o = Mealy.step model s sym in
          if
            List.exists
              (fun (a : Quic_study.Alphabet.apacket) ->
                List.mem Prognosis_quic.Frame.K_handshake_done
                  a.Quic_study.Alphabet.frames)
              o
          then found := true)
        (Mealy.inputs model)
    done;
    !found
  in
  print_table
    [ "client"; "model states"; "handshake reachable" ]
    [
      [ "healthy reference client";
        string_of_int summary.Model_diff.states_a;
        string_of_bool (completes healthy.Quic_study.model) ];
      [ "retry-port-bug client (QUIC-Tracker)";
        string_of_int summary.Model_diff.states_b;
        string_of_bool (completes buggy.Quic_study.model) ];
    ];
  print_newline ();
  Printf.printf
    "shape check: with the reference-implementation bug, the learned model\n\
     shows connection establishment is impossible after a RETRY — exactly how\n\
     the paper detected that QUIC-Tracker echoed the token from a new random\n\
     port, breaking address validation.\n"

(* --- E7: Issue 4, STREAM_DATA_BLOCKED constant (§6.2.6, App. B.1) --- *)

let sdb_words =
  Quic_study.Alphabet.
    [
      [ Initial_crypto; Initial_crypto; Handshake_ack_crypto; Short_ack_stream ];
      [
        Initial_crypto;
        Initial_crypto;
        Handshake_ack_crypto;
        Short_ack_stream;
        Short_ack_flow;
      ];
      [
        Initial_crypto;
        Initial_crypto;
        Handshake_ack_crypto;
        Short_ack_flow;
        Short_ack_stream;
      ];
    ]

let e7 () =
  section "E7" "Issue 4: Maximum Stream Data constant 0 in Google QUIC (§6.2.6)";
  let verdict profile seed =
    let r = Quic_study.learn ~seed ~profile () in
    match Quic_study.synthesize_sdb r sdb_words with
    | Error e -> "synthesis failed: " ^ e
    | Ok machine -> (
        match Quic_study.sdb_verdict machine with
        | `Constant c -> Printf.sprintf "CONSTANT %d" c
        | `Symbolic -> "tracks blocked offset (register term)"
        | `Unobserved -> "unobserved")
  in
  print_table
    [ "implementation"; "paper"; "this repo (synthesized term)" ]
    [
      [ "Google QUIC"; "always 0 (placeholder)"; verdict Profile.google_like 21L ];
      [ "compliant"; "blocked offset"; verdict Profile.quiche_like 22L ];
    ];
  print_newline ();
  Printf.printf
    "shape check: synthesizing the extended Mealy machine over the\n\
     STREAM_DATA_BLOCKED field yields the constant 0 for the buggy profile\n\
     and a symbolic register term for the compliant one (paper App. B.1).\n"

(* --- E8: register synthesis for TCP (§4.3, Fig. 3c / Fig. 4) --- *)

let e8 () =
  section "E8" "Register synthesis over TCP sequence numbers (§4.3, Fig. 3c/4)";
  let result = Lazy.force tcp_ttt in
  let words =
    Prognosis_tcp.Tcp_alphabet.
      [
        [ Syn; Ack; Ack_psh; Ack_psh ];
        [ Syn; Ack_psh; Fin_ack ];
        [ Syn; Ack; Fin_ack; Ack ];
      ]
  in
  match Tcp_study.synthesize result words with
  | Error e -> Printf.printf "synthesis failed: %s\n" e
  | Ok machine ->
      let term_str t =
        match t with
        | None -> "?"
        | Some t ->
            Term.to_string ~names_in:Tcp_study.input_field_names
              ~names_out:Tcp_study.output_field_names t
      in
      let initial = Mealy.initial result.Tcp_study.model in
      print_table
        [ "transition"; "paper pattern"; "synthesized ack term" ]
        [
          [ "LISTEN --SYN--> SYN_RCVD / SYN+ACK"; "ack = seq+1 (r+1 register)";
            term_str
              (Ext_mealy.output_term machine ~state:initial
                 ~input:Prognosis_tcp.Tcp_alphabet.Syn ~field:1) ];
        ];
      print_newline ();
      Printf.printf
        "shape check: the solver recovers the handshake invariant ack=seq+1\n\
         from Oracle-Table traces alone, the Figure 3(c)/Figure 4 result.\n"

(* --- E9: instrumentation cost (§3.2, §6.1) --- *)

let count_lines path =
  try
    let ic = open_in path in
    let n = ref 0 in
    (try
       while true do
         ignore (input_line ic);
         incr n
       done
     with End_of_file -> ());
    close_in ic;
    Some !n
  with Sys_error _ -> None

let e9 () =
  section "E9" "Instrumentation cost: adapter vs protocol logic (§3.2)";
  let sum paths =
    List.fold_left
      (fun acc p -> match count_lines p with Some n -> acc + n | None -> acc)
      0 paths
  in
  let tcp_adapter = sum [ "lib/tcp/tcp_adapter.ml"; "lib/tcp/tcp_client.ml" ] in
  let tcp_protocol = sum [ "lib/tcp/tcp_server.ml"; "lib/tcp/tcp_wire.ml" ] in
  let quic_adapter = sum [ "lib/quic/quic_adapter.ml"; "lib/quic/quic_client.ml" ] in
  let quic_protocol =
    sum
      [
        "lib/quic/quic_server.ml"; "lib/quic/quic_packet.ml"; "lib/quic/frame.ml";
        "lib/quic/quic_crypto.ml"; "lib/quic/varint.ml";
      ]
  in
  if tcp_adapter = 0 then
    print_endline
      "(source tree not reachable from the current directory; run from the\n\
       repository root to measure)"
  else begin
    print_table
      [ "protocol"; "paper: instrumentation"; "paper: full mapper [22]"; "this repo: adapter"; "this repo: protocol stack" ]
      [
        [ "TCP"; "~300 LoC"; "2700 LoC";
          string_of_int tcp_adapter; string_of_int tcp_protocol ];
        [ "QUIC"; "~2000 LoC"; "infeasible";
          string_of_int quic_adapter; string_of_int quic_protocol ];
      ];
    print_newline ();
    Printf.printf
      "shape check: the adapter (instrumented reference client) is a small\n\
       fraction of the protocol stack it reuses — the paper's core\n\
       modularity argument.\n"
  end

(* --- Ablations: the design choices DESIGN.md calls out --- *)

let a1_algorithm_and_cache () =
  section "A1" "Ablation: learning algorithm x query cache (TCP)";
  let run algorithm cache =
    let sul = Prognosis_tcp.Tcp_adapter.sul ~seed:1L () in
    let rng = Prognosis_sul.Rng.create 8L in
    let eq =
      Prognosis_learner.Eq_oracle.combine
        [
          Prognosis_learner.Eq_oracle.w_method ~extra_states:1 ();
          Prognosis_learner.Eq_oracle.random_words ~rng ~max_tests:500 ~min_len:1
            ~max_len:12;
        ]
    in
    Learn.run ~algorithm ~cache ~inputs:Prognosis_tcp.Tcp_alphabet.all ~sul ~eq ()
  in
  let row name algorithm cache =
    let r = run algorithm cache in
    [
      name;
      string_of_int (Mealy.size r.Learn.model);
      string_of_int r.Learn.stats.Prognosis_learner.Oracle.membership_queries;
      string_of_int r.Learn.cache_hits;
      string_of_int r.Learn.rounds;
    ]
  in
  print_table
    [ "configuration"; "states"; "SUL queries"; "cache hits"; "eq rounds" ]
    [
      row "TTT + cache" Learn.Ttt_tree true;
      row "TTT, no cache" Learn.Ttt_tree false;
      row "L* + cache" Learn.L_star true;
      row "L*, no cache" Learn.L_star false;
    ];
  print_newline ();
  print_endline
    "takeaway: the prefix cache absorbs a large share of redundant queries;\n\
     TTT needs fewer live queries than L*, as expected from the literature."

let a2_equivalence_oracles () =
  section "A2" "Ablation: equivalence oracle choice (TCP)";
  let module Eq = Prognosis_learner.Eq_oracle in
  let target = (Lazy.force tcp_ttt).Tcp_study.model in
  let run name eq =
    let sul = Prognosis_tcp.Tcp_adapter.sul ~seed:1L () in
    let r = Learn.run ~inputs:Prognosis_tcp.Tcp_alphabet.all ~sul ~eq () in
    let correct = Mealy.equivalent r.Learn.model target = None in
    [
      name;
      string_of_int (Mealy.size r.Learn.model);
      string_of_int r.Learn.stats.Prognosis_learner.Oracle.test_words;
      string_of_bool correct;
    ]
  in
  let rng1 = Prognosis_sul.Rng.create 21L in
  let rng2 = Prognosis_sul.Rng.create 22L in
  print_table
    [ "oracle"; "states"; "test words"; "finds true model" ]
    [
      run "W-method (k=1)" (Eq.w_method ~extra_states:1 ());
      run "Wp-method (k=1)" (Eq.wp_method ~extra_states:1 ());
      run "random words (2000)"
        (Eq.random_words ~rng:rng1 ~max_tests:2000 ~min_len:1 ~max_len:12);
      run "random words (5, len<=2)"
        (Eq.random_words ~rng:rng2 ~max_tests:5 ~min_len:1 ~max_len:2);
    ];
  print_newline ();
  print_endline
    "takeaway: conformance suites (W/Wp) guarantee the result up to the state\n\
     bound; an underpowered random oracle can terminate on a too-small model\n\
     — the paper's point that absent counterexamples prove nothing."

let a3_tcp_server_config () =
  section "A3" "Ablation: TCP server design choices vs learned model";
  let learn config =
    Tcp_study.learn ~seed:1L ~server_config:config ()
  in
  let base = Prognosis_tcp.Tcp_server.default_config in
  let default_model = (learn base).Tcp_study.model in
  let row name config =
    let r = learn config in
    [
      name;
      string_of_int r.Tcp_study.report.Report.states;
      string_of_int r.Tcp_study.report.Report.transitions;
      string_of_bool (Mealy.equivalent r.Tcp_study.model default_model = None);
    ]
  in
  print_table
    [ "server configuration"; "states"; "transitions"; "same behaviour as default" ]
    [
      row "one-shot listener, challenge ACKs (default)" base;
      row "persistent listener" { base with Prognosis_tcp.Tcp_server.one_shot = false };
      row "no challenge ACKs"
        { base with Prognosis_tcp.Tcp_server.challenge_acks = false };
    ];
  print_newline ();
  print_endline
    "takeaway: implementation choices that look minor (does the listener\n\
     survive a close? are in-window SYNs challenged?) are immediately visible\n\
     as different learned-model shapes — the mechanism behind the paper's\n\
     cross-implementation findings."

let a4_passive_hybrid () =
  section "A4" "Ablation: passive/active hybrid (paper §8 future work)";
  let module Passive = Prognosis_learner.Passive in
  let module Cache = Prognosis_learner.Cache in
  let module Oracle = Prognosis_learner.Oracle in
  let inputs = Prognosis_tcp.Tcp_alphabet.all in
  let learn ~log_words =
    let rng = Prognosis_sul.Rng.create 17L in
    let log_sul = Prognosis_tcp.Tcp_adapter.sul ~seed:31L () in
    let logs =
      if log_words = 0 then []
      else Passive.random_sample ~rng ~inputs ~words:log_words ~max_len:8 log_sul
    in
    let raw = Oracle.of_sul (Prognosis_tcp.Tcp_adapter.sul ~seed:31L ()) in
    let cache = Cache.create () in
    Passive.preload cache logs;
    let mq = Cache.wrap cache raw in
    let _model, _ =
      Prognosis_learner.Ttt.learn ~inputs ~mq
        ~eq:(Prognosis_learner.Eq_oracle.w_method ~extra_states:1 ())
        ()
    in
    raw.Oracle.stats.Oracle.membership_queries
  in
  print_table
    [ "logged words preloaded"; "live SUL queries" ]
    (List.map
       (fun n -> [ string_of_int n; string_of_int (learn ~log_words:n) ])
       [ 0; 100; 400; 1000 ]);
  print_newline ();
  print_endline
    "takeaway: preloading logged traffic into the membership cache lets the\n\
     active learner skip queries the logs already answer — the passive+active\n\
     combination the paper proposes as future work, with guarantees intact."

let a5_nondet_sensitivity () =
  section "A5" "Ablation: nondeterminism-check sensitivity (Issue 2 detection)";
  let module Nondet = Prognosis_sul.Nondet in
  let word =
    Quic_study.Alphabet.[ Initial_crypto; Handshake_ack_hsd; Short_ack_stream ]
  in
  let detection_rate min_runs =
    let trials = 40 in
    let detected = ref 0 in
    for t = 1 to trials do
      let sul =
        Prognosis_quic.Quic_adapter.sul ~profile:Profile.mvfst_like
          ~seed:(Int64.of_int (1000 + t))
          ()
      in
      match
        Nondet.query { Nondet.min_runs; max_runs = 10 * min_runs; agreement = 0.99 }
          sul word
      with
      | Nondet.Nondeterministic _ -> incr detected
      | Nondet.Deterministic _ -> ()
    done;
    float_of_int !detected /. float_of_int trials
  in
  print_table
    [ "min runs per query"; "detection rate (40 trials)" ]
    (List.map
       (fun n -> [ string_of_int n; Printf.sprintf "%.0f%%" (100. *. detection_rate n) ])
       [ 1; 2; 3; 5; 10 ]);
  print_newline ();
  print_endline
    "takeaway: a single execution per query (min_runs=1) can never observe\n\
     the 82%-reset inconsistency; a handful of repetitions makes detection\n\
     near-certain — why the paper's check runs every query a minimum number\n\
     of times."

(* --- A7: the query-execution engine vs the sequential oracle --- *)

let exec_config =
  {
    Prognosis_exec.Engine.default with
    Prognosis_exec.Engine.workers = 4;
    batch = true;
  }

let tcp_pooled = lazy (Tcp_study.learn ~seed:1L ~exec:exec_config ())

let quic_pooled =
  lazy (Quic_study.learn ~seed:3L ~exec:exec_config ~profile:Profile.quiche_like ())

let exec_field e k =
  let module Jsonx = Prognosis_obs.Jsonx in
  match Jsonx.member k e with
  | Some v -> Option.value ~default:0 (Jsonx.to_int_opt v)
  | None -> 0

let a7_exec () =
  section "A7"
    "Ablation: query-execution engine (4 workers, batched) vs sequential oracle";
  let rows = ref [] and checks = ref [] in
  let substrate name (direct : Report.t) direct_model (pooled : Report.t)
      pooled_model =
    let e = Option.get pooled.Report.exec in
    let base_r = exec_field e "baseline_resets"
    and base_s = exec_field e "baseline_steps" in
    let eng_r = exec_field e "resets" and eng_s = exec_field e "steps" in
    let seq_r = direct.Report.membership_queries
    and seq_s = direct.Report.membership_symbols in
    let pct a b = 100. *. (1. -. (float_of_int a /. float_of_int b)) in
    let row oracle r s =
      [
        name;
        oracle;
        string_of_int r;
        string_of_int s;
        string_of_int (r + s);
        Printf.sprintf "%.1f%%" (pct (r + s) (base_r + base_s));
      ]
    in
    rows :=
      !rows
      @ [
          row "sequential, no reuse (baseline)" base_r base_s;
          row "sequential + cache (seed path)" seq_r seq_s;
          row "engine: 4 workers, batched" eng_r eng_s;
        ];
    let identical = Mealy.equivalent direct_model pooled_model = None in
    let saved = 4 * (eng_r + eng_s) <= 3 * (base_r + base_s) in
    checks := (name, identical, saved) :: !checks;
    (* The subsystem's acceptance bar: identical models, >= 25% fewer
       resets+steps than the no-reuse sequential oracle. *)
    assert identical;
    assert saved
  in
  substrate "tcp" (Lazy.force tcp_ttt).Tcp_study.report
    (Lazy.force tcp_ttt).Tcp_study.model
    (Lazy.force tcp_pooled).Tcp_study.report
    (Lazy.force tcp_pooled).Tcp_study.model;
  substrate "quic" (Lazy.force quic_quiche).Quic_study.report
    (Lazy.force quic_quiche).Quic_study.model
    (Lazy.force quic_pooled).Quic_study.report
    (Lazy.force quic_pooled).Quic_study.model;
  print_table
    [ "substrate"; "oracle"; "resets"; "steps"; "resets+steps"; "saved vs no-reuse" ]
    !rows;
  print_newline ();
  List.iter
    (fun (name, identical, saved) ->
      Printf.printf "check (%s): identical models: %b; >=25%% saved: %b\n" name
        identical saved)
    (List.rev !checks);
  print_endline
    "takeaway: the engine's cache/dedup/prefix planning absorbs the redundant\n\
     share of the query stream (>=25% of resets+steps against a no-reuse\n\
     sequential oracle, asserted above) while the learned models stay\n\
     identical; most of the residual cost is the conformance suite, whose\n\
     maximal words every closed-box oracle must execute in full."

(* --- A9: packed automaton stepping vs the functional interpreter --- *)

let a9_packed () =
  section "A9" "Ablation: packed automaton stepping vs functional interpreter";
  let m = (Lazy.force quic_quiche).Quic_study.model in
  let suite = Testing.w_method ~extra_states:1 m in
  let words = List.length suite in
  let symbols = List.fold_left (fun acc w -> acc + List.length w) 0 suite in
  (* observational equality first: the packed stepper must agree with
     the reference interpreter on every suite word *)
  List.iter
    (fun w ->
      if Mealy.run m w <> Mealy.run_reference m w then
        failwith "A9: packed stepping diverges from the functional interpreter")
    suite;
  ignore (Mealy.pack m);
  let time reps f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      List.iter (fun w -> ignore (f m w)) suite
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let reps = 40 in
  let packed = time reps Mealy.run in
  let functional = time reps Mealy.run_reference in
  print_table
    [ "stepper"; "suite time"; "per symbol" ]
    [
      [ "functional (map lookups)";
        Printf.sprintf "%.2f ms" (1000. *. functional);
        Printf.sprintf "%.0f ns" (1e9 *. functional /. float_of_int symbols) ];
      [ "packed (flat int arrays)";
        Printf.sprintf "%.2f ms" (1000. *. packed);
        Printf.sprintf "%.0f ns" (1e9 *. packed /. float_of_int symbols) ];
    ];
  print_newline ();
  Printf.printf
    "check: outputs identical on all %d suite words (%d symbols); packed\n\
     stepping is %.1fx the functional interpreter's speed on this run.\n\
     takeaway: freezing the transition maps into flat next/output arrays\n\
     turns hypothesis execution — the inner loop of equivalence testing and\n\
     product exploration — into two array reads per symbol.\n"
    words symbols
    (functional /. packed)

let a8_loss_robustness () =
  section "A8" "Ablation: learning through a lossy channel (environmental nondeterminism, §5)";
  let reference = (Lazy.force tcp_ttt).Tcp_study.model in
  let attempt ~loss ~runs =
    let sul =
      Prognosis_tcp.Tcp_adapter.sul
        ~network:(Prognosis_sul.Network.lossy loss) ~seed:7L ()
    in
    let mq =
      Prognosis_learner.Oracle.of_fun
        (Prognosis_sul.Nondet.modal_oracle ~runs sul)
    in
    match
      Prognosis_learner.Learn.run_mq ~max_rounds:50
        ~inputs:Prognosis_tcp.Tcp_alphabet.all ~mq
        ~eq:(Prognosis_learner.Eq_oracle.w_method ~extra_states:1 ())
        ()
    with
    | result ->
        let same =
          Mealy.equivalent result.Learn.model reference = None
        in
        ( (if same then "recovered exactly" else "diverged"),
          result.Learn.stats.Prognosis_learner.Oracle.membership_queries )
    | exception Failure _ -> ("learning failed", 0)
  in
  print_table
    [ "loss rate"; "runs/query"; "outcome"; "SUL executions" ]
    (List.map
       (fun (loss, runs) ->
         let outcome, queries = attempt ~loss ~runs in
         [
           Printf.sprintf "%.0f%%" (100. *. loss);
           string_of_int runs;
           outcome;
           string_of_int (queries * runs);
         ])
       [ (0.0, 1); (0.03, 15); (0.10, 25) ]);
  print_newline ();
  print_endline
    "takeaway: environmental loss makes single executions nondeterministic;\n\
     the repetition mechanism of §5 (modal answers over repeated runs)\n\
     recovers the exact reliable-channel model at moderate loss, paying\n\
     linearly in SUL executions. At 10% loss the mechanism hits its limit:\n\
     lost packets desynchronize client and server state, per-position modal\n\
     answers stop describing any single machine, and the learner rejects its\n\
     own counterexamples — matching the paper's remark that past a retry\n\
     budget, learning must pause and surface the problem to the user."

let a6_alphabet_size () =
  section "A6" "Ablation: abstract-alphabet size vs learning cost (§6.2.2)";
  let run alphabet =
    let t0 = Unix.gettimeofday () in
    let r =
      Quic_study.learn ~seed:3L ~alphabet ~profile:Profile.quiche_like ()
    in
    let dt = Unix.gettimeofday () -. t0 in
    (r.Quic_study.report, dt)
  in
  let seven, t7 = run Quic_study.Alphabet.all in
  let nine, t9 = run Quic_study.Alphabet.extended in
  let row name (r : Report.t) dt =
    [
      name;
      string_of_int r.Report.alphabet;
      string_of_int r.Report.states;
      string_of_int r.Report.membership_queries;
      Printf.sprintf "%.0f ms" (1000. *. dt);
      string_of_int (Report.trace_count r ~max_len:10);
    ]
  in
  print_table
    [ "alphabet"; "symbols"; "states"; "SUL queries"; "wall time"; "traces len<=10" ]
    [
      row "paper's 7 symbols" seven t7;
      row "extended (+PING, +PATH_CHALLENGE, +PATH_RESPONSE)" nine t9;
    ];
  print_newline ();
  print_endline
    "takeaway: three extra symbols multiply the exhaustive trace space ~35x\n\
     and grow query counts noticeably — the paper's reason for hand-picking a\n\
     seven-symbol alphabet instead of the >30,000-symbol full frame space."

let x1_third_protocol () =
  section "X1" "Reusability: a third protocol through the same engine (contribution 1)";
  let dtls = Dtls_study.learn ~seed:41L () in
  let dtls_nocookie =
    Dtls_study.learn ~seed:43L
      ~server_config:
        { Prognosis_dtls.Dtls_server.require_cookie = false; strict_ccs = true }
      ()
  in
  let row (r : Report.t) =
    [
      r.Report.subject;
      string_of_int r.Report.alphabet;
      string_of_int r.Report.states;
      string_of_int r.Report.transitions;
      string_of_int r.Report.membership_queries;
    ]
  in
  print_table
    [ "subject"; "alphabet"; "states"; "transitions"; "SUL queries" ]
    [
      row (Lazy.force tcp_ttt).Tcp_study.report;
      row (Lazy.force quic_quiche).Quic_study.report;
      row { dtls.Dtls_study.report with Report.subject = "dtls (cookie)" };
      row { dtls_nocookie.Dtls_study.report with Report.subject = "dtls (no cookie)" };
    ];
  print_newline ();
  print_endline
    "takeaway: TCP, QUIC and MiniDTLS all run through the identical learner,\n\
     oracles, adapter framework and analyses — only the protocol substrate\n\
     and its (α, γ) pair change, the paper's modularity claim. The cookie\n\
     round-trip is visible as extra states, like QUIC's Retry."

let x4_interop_matrix () =
  section "X4" "Interop matrix: model-guided differential testing across QUIC profiles (§7)";
  let module Diff_test = Prognosis_analysis.Diff_test in
  let profiles = Profile.[ quiche_like; google_like; strict_retry ] in
  let model_of p =
    match p.Profile.name with
    | "google-like" -> (Lazy.force quic_tolerant).Quic_study.model
    | "strict-retry" -> (Lazy.force quic_strict).Quic_study.model
    | _ -> (Lazy.force quic_quiche).Quic_study.model
  in
  let cell pa pb =
    if pa.Profile.name = pb.Profile.name then "-"
    else begin
      let sul = Prognosis_quic.Quic_adapter.sul ~profile:pb ~seed:99L () in
      match Diff_test.model_guided ~max_mismatches:100 ~model:(model_of pa) sul with
      | [] -> "agree"
      | ms -> Printf.sprintf "%d diffs" (List.length ms)
    end
  in
  print_table
    ("model \\ live impl" :: List.map (fun p -> p.Profile.name) profiles)
    (List.map
       (fun pa -> pa.Profile.name :: List.map (fun pb -> cell pa pb) profiles)
       profiles);
  print_newline ();
  print_endline
    "takeaway: each learned model's conformance suite, replayed against every\n\
     other live implementation, pinpoints where the implementations diverge —\n\
     the §7 complementarity of model learning and differential testing, as an\n\
     interop matrix."

let x3_client_role () =
  section "X3" "Role reversal: learning a TCP client with socket-call triggers ([22]'s setup)";
  let module Study = Prognosis_tcp.Tcp_client_study in
  let sul = Study.sul ~seed:51L () in
  let rng = Prognosis_sul.Rng.create 52L in
  let scenarios =
    Study.
      [
        [ Cmd_connect; In_syn_ack; Cmd_send; In_ack; Cmd_close; In_ack; In_fin_ack ];
        [ Cmd_connect; In_syn_ack; In_fin_ack; Cmd_close; In_ack ];
        [ Cmd_connect; In_rst; Cmd_connect ];
      ]
  in
  let eq =
    Prognosis_learner.Eq_oracle.combine
      [
        Prognosis_learner.Eq_oracle.fixed_words scenarios;
        Prognosis_learner.Eq_oracle.w_method ~extra_states:1 ();
        Prognosis_learner.Eq_oracle.random_words ~rng ~max_tests:400 ~min_len:1
          ~max_len:10;
      ]
  in
  let r = Learn.run ~inputs:Study.all ~sul ~eq () in
  print_table
    [ "subject"; "alphabet"; "states"; "transitions"; "SUL queries" ]
    [
      [
        "tcp client (CONNECT/SEND/CLOSE + wire)";
        string_of_int (Array.length Study.all);
        string_of_int (Mealy.size r.Learn.model);
        string_of_int (Mealy.transitions r.Learn.model);
        string_of_int r.Learn.stats.Prognosis_learner.Oracle.membership_queries;
      ];
    ];
  print_newline ();
  let path =
    Mealy.run r.Learn.model
      Study.[ Cmd_connect; In_syn_ack; Cmd_close; In_ack; In_fin_ack ]
  in
  Printf.printf "active close in the learned model:\n  %s\n"
    (String.concat " . " (List.map Study.output_to_string path));
  Printf.printf
    "\ntakeaway: the same engine learns the client role — inputs mix socket\n\
     calls and server segments, the reference endpoint is a server instead of\n\
     a client, and the learned machine exhibits the full RFC 793 client\n\
     lifecycle (SYN_SENT, FIN_WAIT_1/2, TIME_WAIT, CLOSE_WAIT, LAST_ACK).\n"

let x2_quantitative_models () =
  section "X2" "Quantitative models: stochastic annotation + weighted-automata learning (§8)";
  let module Nondet = Prognosis_sul.Nondet in
  let module Stochastic = Prognosis_analysis.Stochastic in
  let module Wfa = Prognosis_learner.Wfa in
  let sul =
    Prognosis_quic.Quic_adapter.sul ~profile:Profile.mvfst_like ~seed:314L ()
  in
  (* 1. learn the modal skeleton of the stochastic implementation. *)
  let mq =
    Prognosis_learner.Oracle.of_fun (Nondet.modal_oracle ~runs:41 sul)
  in
  let rng = Prognosis_sul.Rng.create 15L in
  let skeleton =
    (Prognosis_learner.Learn.run_mq ~max_rounds:30
       ~inputs:Quic_study.Alphabet.all ~mq
       ~eq:
         (Prognosis_learner.Eq_oracle.random_words ~rng ~max_tests:150 ~min_len:1
            ~max_len:6)
       ())
      .Prognosis_learner.Learn.model
  in
  (* 2. estimate per-transition reset probabilities. *)
  let st = Stochastic.estimate ~samples_per_transition:200 ~skeleton ~sul () in
  let reset_prob ~state ~input =
    Stochastic.probability st ~state ~input
      [ Quic_study.Alphabet.abstract_reset ]
  in
  (* 3. learn a weighted automaton of the expected-reset-count function. *)
  let target = Wfa.expected_count ~skeleton ~weight:reset_prob in
  let wfa_rng = Prognosis_sul.Rng.create 16L in
  let eq =
    Wfa.random_eq ~rng:wfa_rng ~mq:target ~tolerance:1e-6 ~max_tests:400
      ~max_len:8 Quic_study.Alphabet.all
  in
  (match Wfa.learn ~alphabet:Quic_study.Alphabet.all ~mq:target ~eq () with
  | Error e -> Printf.printf "WFA learning failed: %s\n" e
  | Ok wfa ->
      let close_then_probe k =
        Quic_study.Alphabet.(
          [ Initial_crypto; Handshake_ack_hsd ]
          @ List.init k (fun _ -> Short_ack_stream))
      in
      print_table
        [ "input word"; "expected resets (WFA prediction)" ]
        (List.map
           (fun k ->
             [
               Printf.sprintf "close, then %d probes" k;
               Printf.sprintf "%.2f" (Wfa.evaluate wfa (close_then_probe k));
             ])
           [ 0; 1; 5; 10 ]);
      print_newline ();
      Printf.printf
        "WFA dimension: %d. shape check: predictions grow linearly at ~0.82\n\
         resets per probe — the mvfst DoS cost model, expressed as the kind of\n\
         quantitative model the paper's future-work section asks for.\n"
        (Wfa.states wfa))

(* --- FIGS: DOT renderings of every learned model (paper App. A) --- *)

(* --- F1: open-world fingerprinting of an endpoint population --- *)

module Library = Prognosis_fingerprint.Library
module Splitter = Prognosis_fingerprint.Splitter
module Identify = Prognosis_fingerprint.Identify

let dtls_ttt = lazy (Dtls_study.learn ~seed:4L ())

type f1_endpoint = {
  f_name : string;
  f_kind : Persist.kind;
  f_model : (string, string) Mealy.t;
  f_learn_queries : int;
  f_sul : unit -> (string, string) Prognosis_sul.Sul.t;
}

let tcp_string_model m =
  Persist.to_string_model ~input_to_string:Prognosis_tcp.Tcp_alphabet.to_string
    ~output_to_string:Prognosis_tcp.Tcp_alphabet.output_to_string m

let tcp_string_sul ?server_config seed () =
  Prognosis_sul.Sul.strings ~symbols:Prognosis_tcp.Tcp_alphabet.all
    ~to_string:Prognosis_tcp.Tcp_alphabet.to_string
    ~output_to_string:Prognosis_tcp.Tcp_alphabet.output_to_string
    (Prognosis_tcp.Tcp_adapter.sul ?server_config ~seed ())

let f1_endpoints () =
  let quic_string_model m =
    Persist.to_string_model
      ~input_to_string:Prognosis_quic.Quic_alphabet.to_string
      ~output_to_string:Prognosis_quic.Quic_alphabet.output_to_string m
  in
  let quic_sul profile seed () =
    Prognosis_sul.Sul.strings ~symbols:Prognosis_quic.Quic_alphabet.all
      ~to_string:Prognosis_quic.Quic_alphabet.to_string
      ~output_to_string:Prognosis_quic.Quic_alphabet.output_to_string
      (Prognosis_quic.Quic_adapter.sul ~profile ~seed ())
  in
  let quic name profile (r : Quic_study.result) seed =
    {
      f_name = name;
      f_kind = Persist.Quic_model;
      f_model = quic_string_model r.Quic_study.model;
      f_learn_queries = r.Quic_study.report.Report.membership_queries;
      f_sul = quic_sul profile seed;
    }
  in
  let tcp = Lazy.force tcp_ttt and dtls = Lazy.force dtls_ttt in
  [
    {
      f_name = "tcp";
      f_kind = Persist.Tcp_model;
      f_model = tcp_string_model tcp.Tcp_study.model;
      f_learn_queries = tcp.Tcp_study.report.Report.membership_queries;
      f_sul = tcp_string_sul 41L;
    };
    {
      f_name = "dtls";
      f_kind = Persist.Dtls_model;
      f_model =
        Persist.to_string_model
          ~input_to_string:Prognosis_dtls.Dtls_alphabet.to_string
          ~output_to_string:Prognosis_dtls.Dtls_alphabet.output_to_string
          dtls.Dtls_study.model;
      f_learn_queries = dtls.Dtls_study.report.Report.membership_queries;
      f_sul =
        (fun () ->
          Prognosis_sul.Sul.strings ~symbols:Prognosis_dtls.Dtls_alphabet.all
            ~to_string:Prognosis_dtls.Dtls_alphabet.to_string
            ~output_to_string:Prognosis_dtls.Dtls_alphabet.output_to_string
            (Prognosis_dtls.Dtls_adapter.sul ~seed:42L ()));
    };
    quic "quic:quiche-like" Profile.quiche_like (Lazy.force quic_quiche) 43L;
    quic "quic:google-like" Profile.google_like (Lazy.force quic_tolerant) 44L;
    quic "quic:strict-retry" Profile.strict_retry (Lazy.force quic_strict) 45L;
  ]

let f1_identify tree sul =
  let engine = Prognosis_exec.Engine.create ~factory:(fun _ -> sul ()) () in
  Identify.run ~mq:(Prognosis_exec.Engine.membership engine) tree

let f1_fingerprint () =
  section "F1"
    "Open-world fingerprinting: model library + adaptive classification (new)";
  let module Jsonx = Prognosis_obs.Jsonx in
  let endpoints = f1_endpoints () in
  let entries =
    List.map
      (fun e -> Library.entry_of_model ~name:e.f_name ~kind:e.f_kind e.f_model)
      endpoints
  in
  let tree_for kind =
    match
      Splitter.build
        (List.filter (fun (e : Library.entry) -> e.Library.kind = kind) entries)
    with
    | Ok tree -> tree
    | Error msg -> failwith ("F1: tree construction failed: " ^ msg)
  in
  (* one tree per kind, shared across the population *)
  let trees =
    List.map (fun k -> (k, tree_for k)) Persist.all_kinds
  in
  let identified =
    List.map
      (fun e -> (e, f1_identify (List.assoc e.f_kind trees) e.f_sul))
      endpoints
  in
  let rows =
    List.map
      (fun (e, (r : Identify.result)) ->
        let outcome =
          match r.Identify.outcome with
          | Identify.Known entry -> entry.Library.name
          | Identify.Novel _ -> "NOVEL"
        in
        [
          e.f_name; outcome;
          string_of_int r.Identify.words_asked;
          string_of_int e.f_learn_queries;
          Printf.sprintf "%.1f%%"
            (100. *. float_of_int r.Identify.words_asked
            /. float_of_int e.f_learn_queries);
        ])
      identified
  in
  print_table
    [ "endpoint"; "identified as"; "id queries"; "full-learn queries"; "cost" ]
    rows;
  List.iter
    (fun (e, (r : Identify.result)) ->
      match r.Identify.outcome with
      | Identify.Known entry when entry.Library.name = e.f_name -> ()
      | _ -> failwith ("F1: endpoint " ^ e.f_name ^ " misidentified"))
    identified;
  let total_id =
    List.fold_left (fun acc (_, r) -> acc + r.Identify.words_asked) 0 identified
  in
  let total_learn =
    List.fold_left (fun acc e -> acc + e.f_learn_queries) 0 endpoints
  in
  let ratio = float_of_int total_id /. float_of_int total_learn in
  Printf.printf
    "\nidentification: %d membership words for %d endpoints vs %d \
     full-learning queries (%.1f%% of full learning)\n"
    total_id (List.length endpoints) total_learn (100. *. ratio);
  if ratio > 0.10 then
    failwith "F1: identification cost exceeds 10% of full learning";
  (* The open-world path: a fault-injected TCP variant absent from the
     library must come back Novel, get learned in full, and extend the
     classification tree so the second encounter is cheap. *)
  let mutated_config =
    { Prognosis_tcp.Tcp_server.default_config with challenge_acks = false }
  in
  let mutated_sul = tcp_string_sul ~server_config:mutated_config 46L in
  let tcp_tree = List.assoc Persist.Tcp_model trees in
  let first = f1_identify tcp_tree mutated_sul in
  (match first.Identify.outcome with
  | Identify.Novel e ->
      Printf.printf
        "\nmutated endpoint (tcp without challenge ACKs): novel at %s, \
         witness %s\n"
        e.Identify.stage
        (String.concat " " e.Identify.word)
  | Identify.Known entry ->
      failwith ("F1: mutant misidentified as " ^ entry.Library.name));
  let mutant =
    Tcp_study.learn ~seed:46L ~server_config:mutated_config ()
  in
  let novel_queries = mutant.Tcp_study.report.Report.membership_queries in
  let mutant_entry =
    Library.entry_of_model ~name:"tcp:no-challenge" ~kind:Persist.Tcp_model
      (tcp_string_model mutant.Tcp_study.model)
  in
  let tcp_tree' =
    match Splitter.insert tcp_tree mutant_entry with
    | Ok (Splitter.Inserted t) -> t
    | Ok (Splitter.Duplicate _) -> failwith "F1: mutant collapsed to duplicate"
    | Error msg -> failwith ("F1: insert failed: " ^ msg)
  in
  let second = f1_identify tcp_tree' mutated_sul in
  (match second.Identify.outcome with
  | Identify.Known entry when entry.Library.name = "tcp:no-challenge" ->
      Printf.printf
        "after full learning (%d queries) + tree extension: re-identified as \
         %s in %d words\n"
        novel_queries entry.Library.name second.Identify.words_asked
  | _ -> failwith "F1: mutant not recognized after library extension");
  let population = List.length endpoints in
  Jsonx.Obj
    [
      ("schema", Jsonx.String "prognosis.fingerprint-bench/1");
      ("population", Jsonx.Int population);
      ("identified", Jsonx.Int population);
      ("novel_count", Jsonx.Int 1);
      ( "queries_per_identification",
        Jsonx.Float (float_of_int total_id /. float_of_int population) );
      ( "full_learning_queries",
        Jsonx.Float (float_of_int total_learn /. float_of_int population) );
      ("query_ratio_pct", Jsonx.Float (100. *. ratio));
      ("novel_learn_queries", Jsonx.Int novel_queries);
      ("novel_reidentify_words", Jsonx.Int second.Identify.words_asked);
    ]

(* --- F2: fleet identification over a shared, sharded cache --- *)

module Service = Prognosis_service.Service
module Subject = Prognosis_service.Subject

let f2_fleet () =
  section "F2"
    "Fleet identification: domain-parallel sessions over one shared sharded \
     cache (new)";
  let module Jsonx = Prognosis_obs.Jsonx in
  let subj name =
    match Subject.of_name name with
    | Ok s -> s
    | Error e -> failwith ("F2: " ^ e)
  in
  (* the F1 population doubles as an in-memory library: its entry
     names are exactly the service's subject spellings *)
  let entries =
    List.map
      (fun e -> Library.entry_of_model ~name:e.f_name ~kind:e.f_kind e.f_model)
      (f1_endpoints ())
  in
  let lib = { Library.dir = "(in-memory)"; entries } in
  (* a 12-endpoint mixed population: every library subject appears at
     least once, the popular ones several times with distinct seeds *)
  let population =
    [
      ("tcp", 101L); ("quic:quiche-like", 102L); ("tcp", 103L);
      ("dtls", 104L); ("quic:google-like", 105L); ("tcp", 106L);
      ("quic:quiche-like", 107L); ("dtls", 108L); ("quic:strict-retry", 109L);
      ("tcp", 110L); ("quic:quiche-like", 111L); ("quic:google-like", 112L);
    ]
  in
  let jobs =
    List.map
      (fun (name, seed) -> Service.job ~seed Service.Identify (subj name))
      population
  in
  let run ~domains jobs =
    match Service.run ~domains ~library:lib ~jobs () with
    | Ok t -> t
    | Error e -> failwith ("F2: " ^ e)
  in
  (* gated counters come from the sequential fleet — deterministic in
     job order; the domain pool is timed separately below and feeds
     the advisory gate only *)
  let fleet = run ~domains:1 jobs in
  List.iter2
    (fun (name, _) (s : Service.session) ->
      match s.Service.outcome with
      | Service.Identified { Identify.outcome = Identify.Known e; _ }
        when e.Library.name = name ->
          ()
      | _ -> failwith ("F2: fleet misidentified " ^ name))
    population fleet.Service.sessions;
  let cold =
    List.fold_left
      (fun acc job ->
        acc + Service.total_membership_queries (run ~domains:1 [ job ]))
      0 jobs
  in
  let fleet_q = Service.total_membership_queries fleet in
  let ratio = float_of_int fleet_q /. float_of_int cold in
  print_table
    [ "population"; "fleet queries"; "12 cold runs"; "ratio"; "shared hits" ]
    [
      [
        string_of_int (List.length population);
        string_of_int fleet_q;
        string_of_int cold;
        Printf.sprintf "%.1f%%" (100. *. ratio);
        string_of_int (Service.shared_hits fleet);
      ];
    ];
  if ratio > 0.60 then
    failwith "F2: fleet identification exceeds 60% of cold-run queries";
  (* wall-clock throughput on the domain pool (advisory only: the
     counter gate never looks at wall-clock figures) *)
  let timed_domains = min 4 (Domain.recommended_domain_count ()) in
  let timed = run ~domains:timed_domains jobs in
  Printf.printf
    "\nfleet of %d sessions on %d domain(s): %.2f sessions/s (%.3fs)\n"
    (List.length population) timed.Service.domains
    timed.Service.sessions_per_sec timed.Service.elapsed_s;
  (* a known endpoint behind a lossy, duplicating channel: replica
     voting absorbs the faults and identification still lands Known *)
  let lossy_subject =
    let base = subj "tcp" in
    {
      base with
      Subject.name = "tcp(lossy)";
      factory =
        (fun ~seed ~workers ->
          Subject.seeded_factory
            (fun wseed ->
              Prognosis_sul.Sul.strings
                ~symbols:Prognosis_tcp.Tcp_alphabet.all
                ~to_string:Prognosis_tcp.Tcp_alphabet.to_string
                ~output_to_string:Prognosis_tcp.Tcp_alphabet.output_to_string
                (Prognosis_tcp.Tcp_adapter.sul
                   ~network:
                     {
                       Prognosis_sul.Network.loss = 0.01;
                       duplicate = 0.01;
                       corrupt = 0.0;
                     }
                   ~seed:wseed ()))
            ~seed ~workers);
    }
  in
  (* 3 replicas vote per word; 6 workers leave an escalation pool for
     the strict-majority re-run when the first three disagree *)
  let vote_config =
    {
      Service.default_config with
      Prognosis_exec.Engine.workers = 6;
      replicas = 3;
    }
  in
  let lossy =
    match
      Service.run ~domains:1 ~config:vote_config ~library:lib
        ~jobs:[ Service.job ~seed:7L Service.Identify lossy_subject ]
        ()
    with
    | Ok t -> t
    | Error e -> failwith ("F2: lossy sub-case: " ^ e)
  in
  (match lossy.Service.sessions with
  | [
   {
     Service.outcome =
       Service.Identified { Identify.outcome = Identify.Known e; _ };
     _;
   };
  ]
    when e.Library.name = "tcp" ->
      Printf.printf
        "lossy channel (1%% loss, 1%% duplication, 3-replica voting): \
         identified as %s\n"
        e.Library.name
  | _ -> failwith "F2: lossy endpoint not identified as tcp");
  Jsonx.Obj
    [
      ("schema", Jsonx.String "prognosis.service-bench/1");
      ("population", Jsonx.Int (List.length population));
      ("fleet", Jsonx.Obj [ ("membership_queries", Jsonx.Int fleet_q) ]);
      ("cold", Jsonx.Obj [ ("membership_queries", Jsonx.Int cold) ]);
      ("query_ratio_pct", Jsonx.Float (100. *. ratio));
      ("shared_cache_hits", Jsonx.Int (Service.shared_hits fleet));
      ("timed_domains", Jsonx.Int timed.Service.domains);
      ("sessions_per_sec", Jsonx.Float timed.Service.sessions_per_sec);
      ("service", Service.to_json fleet);
    ]

let figs () =
  section "FIGS" "Graphviz renderings of the learned models (paper Fig. 3, App. A)";
  let dir = "figures" in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let write name dot =
    let path = Filename.concat dir name in
    Prognosis_analysis.Visualize.write_file ~path dot;
    Printf.printf "  %s\n" path
  in
  (match Sys.is_directory dir with
  | true ->
      write "tcp_model.dot" (Tcp_study.model_dot (Lazy.force tcp_ttt).Tcp_study.model);
      write "quic_google_like.dot"
        (Quic_study.model_dot (Lazy.force quic_tolerant).Quic_study.model);
      write "quic_strict_retry.dot"
        (Quic_study.model_dot (Lazy.force quic_strict).Quic_study.model);
      write "quic_quiche_like.dot"
        (Quic_study.model_dot (Lazy.force quic_quiche).Quic_study.model);
      write "quic_issue1_diff.dot"
        (Prognosis_analysis.Visualize.diff_dot
           ~input_pp:Quic_study.Alphabet.pp
           ~output_pp:Quic_study.Alphabet.pp_output
           (Lazy.force quic_tolerant).Quic_study.model
           (Lazy.force quic_strict).Quic_study.model)
  | false -> print_endline "  (cannot create figures/ directory, skipped)"
  | exception Sys_error _ -> print_endline "  (cannot create figures/ directory, skipped)")

(* --- Bechamel micro-benchmarks --- *)

let benchmarks () =
  section "BENCH" "Bechamel timings of the main pipelines";
  let open Bechamel in
  let open Toolkit in
  let test =
    Test.make_grouped ~name:"prognosis"
      [
        Test.make ~name:"tcp-learning"
          (Staged.stage (fun () -> ignore (Tcp_study.learn ~seed:bench_seed ())));
        Test.make ~name:"quic-learning"
          (Staged.stage (fun () ->
               ignore
                 (Quic_study.learn ~seed:bench_seed ~profile:Profile.quiche_like ())));
        Test.make ~name:"tcp-synthesis"
          (Staged.stage
             (let result = Lazy.force tcp_ttt in
              let words =
                Prognosis_tcp.Tcp_alphabet.
                  [ [ Syn; Ack; Ack_psh; Ack_psh ]; [ Syn; Ack_psh; Fin_ack ] ]
              in
              fun () -> ignore (Tcp_study.synthesize result words)));
        Test.make ~name:"nondet-check-100"
          (Staged.stage (fun () ->
               ignore (Quic_study.close_reset_rate ~seed:9L ~runs:100 Profile.mvfst_like)));
        Test.make ~name:"model-equivalence"
          (Staged.stage
             (let a = (Lazy.force quic_tolerant).Quic_study.model in
              let b = (Lazy.force quic_strict).Quic_study.model in
              fun () -> ignore (Model_diff.first_difference a b)));
        Test.make ~name:"w-method-suite"
          (Staged.stage
             (let m = (Lazy.force quic_tolerant).Quic_study.model in
              fun () -> ignore (Testing.w_method ~extra_states:1 m)));
        Test.make ~name:"packed-stepping"
          (Staged.stage
             (let m = (Lazy.force quic_tolerant).Quic_study.model in
              let suite = Testing.w_method ~extra_states:1 m in
              ignore (Mealy.pack m);
              fun () -> List.iter (fun w -> ignore (Mealy.run m w)) suite));
        Test.make ~name:"functional-stepping"
          (Staged.stage
             (let m = (Lazy.force quic_tolerant).Quic_study.model in
              let suite = Testing.w_method ~extra_states:1 m in
              fun () ->
                List.iter (fun w -> ignore (Mealy.run_reference m w)) suite));
        Test.make ~name:"dtls-learning"
          (Staged.stage (fun () -> ignore (Dtls_study.learn ~seed:5L ())));
        Test.make ~name:"rpni-passive"
          (Staged.stage
             (let rng = Prognosis_sul.Rng.create 17L in
              let sul = Prognosis_tcp.Tcp_adapter.sul ~seed:31L () in
              let sample =
                Prognosis_learner.Passive.random_sample ~rng
                  ~inputs:Prognosis_tcp.Tcp_alphabet.all ~words:150 ~max_len:8 sul
              in
              fun () ->
                ignore
                  (Prognosis_learner.Passive.rpni
                     ~inputs:Prognosis_tcp.Tcp_alphabet.all ~default:[] sample)));
        Test.make ~name:"wfa-learning"
          (Staged.stage
             (let module Wfa = Prognosis_learner.Wfa in
              let skeleton = (Lazy.force tcp_ttt).Tcp_study.model in
              let weight ~state ~input:_ = if state >= 4 then 0.5 else 0.0 in
              let target = Wfa.expected_count ~skeleton ~weight in
              fun () ->
                let rng = Prognosis_sul.Rng.create 23L in
                let eq =
                  Wfa.random_eq ~rng ~mq:target ~tolerance:1e-6 ~max_tests:200
                    ~max_len:6 Prognosis_tcp.Tcp_alphabet.all
                in
                ignore
                  (Wfa.learn ~alphabet:Prognosis_tcp.Tcp_alphabet.all ~mq:target
                     ~eq ())));
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let estimate =
          match Analyze.OLS.estimates ols with
          | Some (v :: _) -> v
          | Some [] | None -> nan
        in
        let pretty =
          if estimate > 1e9 then Printf.sprintf "%.2f s" (estimate /. 1e9)
          else if estimate > 1e6 then Printf.sprintf "%.2f ms" (estimate /. 1e6)
          else if estimate > 1e3 then Printf.sprintf "%.2f us" (estimate /. 1e3)
          else Printf.sprintf "%.0f ns" estimate
        in
        (name, estimate, pretty) :: acc)
      results []
  in
  let rows = List.sort (fun (_, a, _) (_, b, _) -> compare a b) rows in
  print_table
    [ "benchmark"; "time/run" ]
    (List.map (fun (name, _, pretty) -> [ name; pretty ]) rows);
  rows

(* --- BENCH_run.json: machine-readable snapshot of the whole run ---

   Same schema family as the CLI's --metrics-out (prognosis.report/1
   objects plus a metrics snapshot), so the perf trajectory is
   trackable across PRs by diffing these files. *)

(* Two identical-seed learning runs must produce byte-identical
   deterministic counter blocks — the invariant the CI counter gate
   (report diff --counters-only, threshold 0) relies on. Checked here,
   at snapshot time, so a nondeterminism regression fails the bench
   run itself instead of surfacing as an inexplicable gate trip. *)
let determinism_guard () =
  let counters () =
    let r =
      (Quic_study.learn ~seed:bench_seed ~profile:Profile.quiche_like ())
        .Quic_study.report
    in
    ( r.Report.states,
      r.Report.transitions,
      r.Report.membership_queries,
      r.Report.membership_symbols,
      r.Report.test_words,
      r.Report.equivalence_rounds )
  in
  if counters () <> counters () then
    failwith
      "snapshot: two identical-seed quic runs disagree on deterministic \
       counters";
  print_endline
    "determinism guard: repeated identical-seed runs produce identical \
     counter blocks"

let write_snapshot ~fingerprint ~service bench_rows =
  let module Jsonx = Prognosis_obs.Jsonx in
  let module Metrics = Prognosis_obs.Metrics in
  determinism_guard ();
  let report r = Report.to_json r in
  let reports =
    [
      report (Lazy.force tcp_ttt).Tcp_study.report;
      report (Lazy.force tcp_lstar).Tcp_study.report;
      report (Lazy.force quic_tolerant).Quic_study.report;
      report (Lazy.force quic_strict).Quic_study.report;
      report (Lazy.force quic_quiche).Quic_study.report;
      report (Lazy.force tcp_pooled).Tcp_study.report;
      report (Lazy.force quic_pooled).Quic_study.report;
    ]
  in
  (* The A7 numbers as a dedicated block: per-substrate engine stats
     (each a schema-versioned prognosis.exec/1 object) plus the derived
     savings percentage against the no-reuse sequential baseline. *)
  let exec_block =
    let entry (e : Jsonx.t) =
      let actual = exec_field e "resets" + exec_field e "steps" in
      let baseline =
        exec_field e "baseline_resets" + exec_field e "baseline_steps"
      in
      let pct =
        if baseline = 0 then 0.
        else 100. *. (1. -. (float_of_int actual /. float_of_int baseline))
      in
      (e, pct)
    in
    let tcp, tcp_pct =
      entry (Option.get (Lazy.force tcp_pooled).Tcp_study.report.Report.exec)
    in
    let quic, quic_pct =
      entry (Option.get (Lazy.force quic_pooled).Quic_study.report.Report.exec)
    in
    Jsonx.Obj
      [
        ("schema", Jsonx.String "prognosis.exec-ablation/1");
        ("tcp", tcp);
        ("tcp_saved_pct", Jsonx.Float tcp_pct);
        ("quic", quic);
        ("quic_saved_pct", Jsonx.Float quic_pct);
      ]
  in
  let benchmarks =
    List.map
      (fun (name, estimate_ns, _) -> (name, Jsonx.Float estimate_ns))
      (List.sort (fun (a, _, _) (b, _, _) -> compare a b) bench_rows)
  in
  let json =
    Jsonx.Obj
      [
        (* /4: adds the "service" block (F2 fleet identification) *)
        ("schema", Jsonx.String "prognosis.bench/4");
        ("reports", Jsonx.List reports);
        ("exec", exec_block);
        ("fingerprint", fingerprint);
        ("service", service);
        ("benchmarks_ns_per_run", Jsonx.Obj benchmarks);
        ("metrics", Metrics.to_json Metrics.default);
      ]
  in
  let path = "BENCH_run.json" in
  Prognosis_obs.Atomic_file.write ~path (Jsonx.to_string json ^ "\n");
  Printf.printf "snapshot written to %s\n" path

let () =
  print_endline "Prognosis reproduction: experiment harness";
  print_endline "(paper: Ferreira et al., SIGCOMM 2021; all numbers seeded/deterministic)";
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ();
  e7 ();
  e8 ();
  e9 ();
  a1_algorithm_and_cache ();
  a2_equivalence_oracles ();
  a3_tcp_server_config ();
  a4_passive_hybrid ();
  a5_nondet_sensitivity ();
  a6_alphabet_size ();
  a7_exec ();
  a8_loss_robustness ();
  a9_packed ();
  x1_third_protocol ();
  x2_quantitative_models ();
  x3_client_role ();
  x4_interop_matrix ();
  let fingerprint = f1_fingerprint () in
  let service = f2_fleet () in
  figs ();
  let bench_rows = benchmarks () in
  write_snapshot ~fingerprint ~service bench_rows;
  print_newline ()
